#include "optimizer.h"

#include <algorithm>
#include <limits>

#include "dse/schedules.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "robust/cancel.h"
#include "robust/checkpoint.h"
#include "robust/recovery.h"
#include "robust/signal.h"
#include "util/cache.h"
#include "util/logging.h"

namespace lrd {

OptimizerOptions::OptimizerOptions()
    : device(a100_80gb())
{
}

namespace {

/** Payload-format version of DSE checkpoints. */
constexpr uint32_t kDseCkptVersion = 1;

/** One point of the pruned candidate grid. */
struct Candidate
{
    int64_t rank;
    int count;
};

void
putDecompConfig(ByteWriter &w, const DecompConfig &c)
{
    w.putU64(c.layers.size());
    for (int l : c.layers)
        w.putU32(static_cast<uint32_t>(l));
    w.putU64(c.tensors.size());
    for (WeightKind k : c.tensors)
        w.putU32(static_cast<uint32_t>(k));
    w.putU64(static_cast<uint64_t>(c.prunedRank));
    w.putU64(c.rankOverrides.size());
    for (const auto &[key, rank] : c.rankOverrides) {
        w.putU32(static_cast<uint32_t>(key.first));
        w.putU32(static_cast<uint32_t>(key.second));
        w.putU64(static_cast<uint64_t>(rank));
    }
}

DecompConfig
getDecompConfig(ByteReader &r)
{
    DecompConfig c;
    const uint64_t nLayers = r.getU64();
    c.layers.resize(nLayers);
    for (uint64_t i = 0; i < nLayers; ++i)
        c.layers[i] = static_cast<int>(r.getU32());
    const uint64_t nTensors = r.getU64();
    c.tensors.resize(nTensors);
    for (uint64_t i = 0; i < nTensors; ++i)
        c.tensors[i] = static_cast<WeightKind>(r.getU32());
    c.prunedRank = static_cast<int64_t>(r.getU64());
    const uint64_t nOverrides = r.getU64();
    for (uint64_t i = 0; i < nOverrides; ++i) {
        const int layer = static_cast<int>(r.getU32());
        const int kind = static_cast<int>(r.getU32());
        c.rankOverrides[{layer, kind}] = static_cast<int64_t>(r.getU64());
    }
    return c;
}

// All metric doubles round-trip as raw f64 bits, so a resumed sweep
// reports bitwise the same records as an uninterrupted one.
void
putCandidateRecord(ByteWriter &w, const CandidateRecord &rec)
{
    putDecompConfig(w, rec.config);
    w.putF64(rec.accuracy);
    w.putF64(rec.latencySec);
    w.putF64(rec.energyJ);
    w.putF64(rec.edp);
    w.putF64(rec.reduction);
    w.putU32(rec.failed ? 1 : 0);
    w.putString(rec.failure);
}

CandidateRecord
getCandidateRecord(ByteReader &r)
{
    CandidateRecord rec;
    rec.config = getDecompConfig(r);
    rec.accuracy = r.getF64();
    rec.latencySec = r.getF64();
    rec.energyJ = r.getF64();
    rec.edp = r.getF64();
    rec.reduction = r.getF64();
    rec.failed = r.getU32() != 0;
    rec.failure = r.getString();
    return rec;
}

void
writeDseCheckpoint(const OptimizerOptions &opts,
                   const OptimizerResult &result,
                   const std::vector<Candidate> &grid,
                   const std::vector<uint8_t> &done,
                   const std::vector<CandidateRecord> &records)
{
    ByteWriter w;
    w.putF64(result.baselineAccuracy);
    w.putF64(result.baselineEdp);
    w.putU64(grid.size());
    for (const Candidate &cand : grid) {
        w.putU64(static_cast<uint64_t>(cand.rank));
        w.putU32(static_cast<uint32_t>(cand.count));
    }
    for (size_t i = 0; i < grid.size(); ++i) {
        w.putU32(done[i] != 0 ? 1 : 0);
        if (done[i] != 0)
            putCandidateRecord(w, records[i]);
    }
    Status s = writeCheckpoint(opts.checkpointPath, kDseCkptVersion,
                               w.bytes());
    if (!s.ok()) {
        if (robustPolicy().mode == RobustMode::Strict)
            fatal("dse: checkpoint failed: " + s.toString());
        warn("dse: checkpoint skipped; " + s.toString());
    }
}

Status
restoreDseCheckpoint(const OptimizerOptions &opts, OptimizerResult &result,
                     const std::vector<Candidate> &grid,
                     std::vector<uint8_t> &done,
                     std::vector<CandidateRecord> &records)
{
    Result<std::vector<uint8_t>> payload =
        readCheckpointWithFallback(opts.checkpointPath, kDseCkptVersion);
    if (!payload.ok())
        return payload.status();
    ByteReader r(std::move(payload).value());
    const double baselineAccuracy = r.getF64();
    const double baselineEdp = r.getF64();
    if (r.getU64() != grid.size())
        return Status(StatusCode::InvalidArgument, "dse.resume",
                      "checkpoint grid size does not match this search");
    for (const Candidate &cand : grid) {
        const auto rank = static_cast<int64_t>(r.getU64());
        const auto count = static_cast<int>(r.getU32());
        if (rank != cand.rank || count != cand.count)
            return Status(StatusCode::InvalidArgument, "dse.resume",
                          "checkpoint candidate grid does not match "
                          "this search");
    }
    for (size_t i = 0; i < grid.size(); ++i) {
        done[i] = r.getU32() != 0 ? 1 : 0;
        if (done[i] != 0)
            records[i] = getCandidateRecord(r);
    }
    result.baselineAccuracy = baselineAccuracy;
    result.baselineEdp = baselineEdp;
    return Status();
}

} // namespace

OptimizerResult
optimizeDecomposition(const std::vector<uint8_t> &modelBytes,
                      const World &world, const OptimizerOptions &opts)
{
    require(opts.accuracyDropTolerance >= 0.0,
            "optimizeDecomposition: tau must be >= 0");
    require(!opts.candidateRanks.empty(),
            "optimizeDecomposition: no candidate ranks");

    OptimizerResult result;

    // EDP is computed either on the probe model's own shape or
    // projected onto the full Llama2-7B shape at the same reduction.
    const ModelConfig edpShape = llama2_7bConfig();
    auto edpEstimate = [&](const ModelConfig &probeCfg,
                           const DecompConfig &gamma) {
        if (!opts.projectEdpOnLlama7b)
            return estimateGeneration(probeCfg, gamma, opts.device,
                                      opts.workload);
        const DecompConfig projected = scheduleForReduction(
            edpShape, gamma.parameterReduction(probeCfg));
        return estimateGeneration(edpShape, projected, opts.device,
                                  opts.workload);
    };

    // Pruned candidate family (Section 3.4 insights): all tensors,
    // spread interior layer schedules, small ranks. Candidates are
    // independent (each deserializes its own probe model), so the
    // enumeration fans out across the pool; records land in a fixed
    // grid slot and the feasibility/best fold below runs serially in
    // enumeration order, keeping the result thread-count invariant.
    TransformerModel probe = TransformerModel::deserialize(modelBytes);
    const ModelConfig cfg = probe.config();
    std::vector<Candidate> grid;
    for (int64_t rank : opts.candidateRanks)
        for (int count = 1; count <= cfg.nLayers; ++count)
            grid.push_back({rank, count});

    std::vector<CandidateRecord> records(grid.size());
    std::vector<uint8_t> done(grid.size(), 0);

    bool resumed = false;
    if (opts.resume && !opts.checkpointPath.empty()) {
        Status rs =
            restoreDseCheckpoint(opts, result, grid, done, records);
        if (rs.ok()) {
            int64_t numDone = 0;
            for (uint8_t d : done)
                numDone += d != 0;
            inform(strCat("dse: resumed ", opts.checkpointPath, " with ",
                          numDone, " of ", grid.size(),
                          " candidates already evaluated"));
            resumed = true;
        } else if (rs.code() == StatusCode::NotFound) {
            inform("dse: no checkpoint yet; starting fresh");
        } else {
            fatal("dse: cannot resume: " + rs.toString());
        }
    }

    WatchdogSection watched("dse");
    bool baselineTainted = false;
    if (!resumed) {
        // Baseline accuracy and EDP on the dense model.
        TransformerModel dense = TransformerModel::deserialize(modelBytes);
        Evaluator ev(dense, world,
                     EvalOptions{opts.evalTasks, opts.evalSeed, false});
        result.baselineAccuracy = ev.aggregateAccuracy();
        const InferenceEstimate est =
            edpEstimate(cfg, DecompConfig::identity());
        result.baselineEdp = est.latencySec * est.energyJoules;
        // A cancel during the baseline eval leaves a partial accuracy;
        // never checkpoint it, so a resumed sweep recomputes it.
        baselineTainted = cancelRequested();
    }

    const auto total = static_cast<int64_t>(grid.size());
    const bool checkpointing =
        !opts.checkpointPath.empty() && opts.checkpointEvery > 0;
    const int64_t stride = checkpointing ? opts.checkpointEvery : total;
    auto runCandidates = [&](int64_t runBegin, int64_t runEnd) {
        parallelFor(
            runBegin, runEnd, 1, [&](int64_t lo, int64_t hi) {
                static Counter *candidates =
                    MetricsRegistry::instance().counter("dse.candidates");
                for (int64_t idx = lo; idx < hi; ++idx) {
                    if (done[static_cast<size_t>(idx)] != 0)
                        continue; // Already evaluated before resume.
                    LRD_TRACE_SPAN("dse.candidate");
                    candidates->inc();
                    const Candidate &cand =
                        grid[static_cast<size_t>(idx)];
                    DecompConfig gamma = DecompConfig::allTensors(
                        cfg,
                        spreadSchedule(static_cast<int>(cfg.nLayers),
                                       cand.count),
                        cand.rank);

                    CandidateRecord rec;
                    rec.config = gamma;
                    auto evaluate = [&] {
                        TransformerModel model =
                            TransformerModel::deserialize(modelBytes);
                        Status ds = gamma.applyTo(model);
                        if (!ds.ok()) {
                            rec.failed = true;
                            rec.failure = ds.toString();
                            return;
                        }
                        Evaluator ev(model, world,
                                     EvalOptions{opts.evalTasks,
                                                 opts.evalSeed, false});
                        rec.accuracy = ev.aggregateAccuracy();
                        rec.reduction = gamma.parameterReduction(cfg);
                        const InferenceEstimate est =
                            edpEstimate(cfg, gamma);
                        rec.latencySec = est.latencySec;
                        rec.energyJ = est.energyJoules;
                        rec.edp = est.latencySec * est.energyJoules;
                    };
                    if (robustPolicy().mode == RobustMode::Strict) {
                        evaluate();
                    } else {
                        // Graceful degradation: one faulted candidate
                        // is recorded and the sweep continues.
                        try {
                            evaluate();
                        } catch (const std::exception &e) {
                            rec.failed = true;
                            rec.failure = e.what();
                        }
                    }
                    if (cancelRequested())
                        continue; // Mid-candidate kill: drop the
                                  // partial record so a resumed sweep
                                  // re-evaluates this slot.
                    records[static_cast<size_t>(idx)] = std::move(rec);
                    done[static_cast<size_t>(idx)] = 1;
                }
            });
    };
    for (int64_t batchStart = 0; batchStart < total;
         batchStart += stride) {
        // Batch boundaries are the sweep's cancellation points: a
        // signal, an injected "dse.batch" cancel, or an expired
        // deadline stops here, after a final checkpoint has captured
        // every fully evaluated candidate.
        pollCancelFault("dse.batch");
        const int64_t batchEnd = std::min(total, batchStart + stride);
        Status cancel = checkCancellation("dse.batch");
        if (cancel.ok()) {
            const int64_t admitted =
                consumeWorkBudget("steps", batchEnd - batchStart);
            if (admitted > 0)
                runCandidates(batchStart, batchStart + admitted);
            if (admitted < batchEnd - batchStart)
                expireDeadline("dse.batch");
            // Re-check: a signal may have landed mid-batch.
            cancel = checkCancellation("dse.batch");
        }
        if (checkpointing && !baselineTainted)
            writeDseCheckpoint(opts, result, grid, done, records);
        if (!cancel.ok()) {
            result.cancelled = true;
            result.status = cancel;
            break;
        }
    }

    double bestEdp = std::numeric_limits<double>::infinity();
    bool haveBest = false;
    int64_t numDone = 0;
    Status firstFailure;
    for (size_t i = 0; i < records.size(); ++i) {
        if (done[i] == 0)
            continue; // Cancelled before this slot was evaluated.
        ++numDone;
        CandidateRecord &rec = records[i];
        if (rec.failed) {
            ++result.numFailed;
            if (firstFailure.ok())
                firstFailure = Status(StatusCode::Internal,
                                      "dse.candidate", rec.failure);
            rec.feasible = false;
        } else {
            rec.feasible =
                std::max(result.baselineAccuracy - rec.accuracy, 0.0)
                < opts.accuracyDropTolerance;
        }
        if (rec.feasible && rec.edp < bestEdp) {
            bestEdp = rec.edp;
            result.best = rec;
            haveBest = true;
        }
        result.explored.push_back(std::move(rec));
    }
    enforceFailureBudget("dse", result.numFailed, numDone, firstFailure);

    if (!haveBest) {
        // No decomposition satisfies tau: the identity is the answer.
        CandidateRecord identity;
        identity.config = DecompConfig::identity();
        identity.accuracy = result.baselineAccuracy;
        identity.edp = result.baselineEdp;
        identity.feasible = true;
        result.best = identity;
    }
    return result;
}

} // namespace lrd
