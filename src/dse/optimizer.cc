#include "optimizer.h"

#include <algorithm>
#include <limits>

#include <unistd.h>

#include "dse/schedules.h"
#include "dse/shard.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "robust/cancel.h"
#include "robust/checkpoint.h"
#include "robust/recovery.h"
#include "robust/signal.h"
#include "util/cache.h"
#include "util/logging.h"

namespace lrd {

OptimizerOptions::OptimizerOptions()
    : device(a100_80gb())
{
}

namespace {

/** Payload-format version of DSE checkpoints. v2 added the grid
 *  index and feasibility flag to serialized candidate records. */
constexpr uint32_t kDseCkptVersion = 2;

/** One point of the pruned candidate grid. */
struct Candidate
{
    int64_t rank;
    int count;
};

// Record (de)serialization is shared with the shard protocol — see
// putCandidateRecord/getCandidateRecord in dse/shard.h. All metric
// doubles round-trip as raw f64 bits, so a resumed sweep reports
// bitwise the same records as an uninterrupted one.

void
writeDseCheckpoint(const OptimizerOptions &opts,
                   const OptimizerResult &result,
                   const std::vector<Candidate> &grid,
                   const std::vector<uint8_t> &done,
                   const std::vector<CandidateRecord> &records)
{
    ByteWriter w;
    w.putF64(result.baselineAccuracy);
    w.putF64(result.baselineEdp);
    w.putU64(grid.size());
    for (const Candidate &cand : grid) {
        w.putU64(static_cast<uint64_t>(cand.rank));
        w.putU32(static_cast<uint32_t>(cand.count));
    }
    for (size_t i = 0; i < grid.size(); ++i) {
        w.putU32(done[i] != 0 ? 1 : 0);
        if (done[i] != 0)
            putCandidateRecord(w, records[i]);
    }
    Status s = writeCheckpoint(opts.checkpointPath, kDseCkptVersion,
                               w.bytes());
    if (!s.ok()) {
        if (robustPolicy().mode == RobustMode::Strict)
            fatal("dse: checkpoint failed: " + s.toString());
        warn("dse: checkpoint skipped; " + s.toString());
    }
}

Status
restoreDseCheckpoint(const OptimizerOptions &opts, OptimizerResult &result,
                     const std::vector<Candidate> &grid,
                     std::vector<uint8_t> &done,
                     std::vector<CandidateRecord> &records)
{
    Result<std::vector<uint8_t>> payload =
        readCheckpointWithFallback(opts.checkpointPath, kDseCkptVersion);
    if (!payload.ok())
        return payload.status();
    ByteReader r(std::move(payload).value());
    const double baselineAccuracy = r.getF64();
    const double baselineEdp = r.getF64();
    if (r.getU64() != grid.size())
        return Status(StatusCode::InvalidArgument, "dse.resume",
                      "checkpoint grid size does not match this search");
    for (const Candidate &cand : grid) {
        const auto rank = static_cast<int64_t>(r.getU64());
        const auto count = static_cast<int>(r.getU32());
        if (rank != cand.rank || count != cand.count)
            return Status(StatusCode::InvalidArgument, "dse.resume",
                          "checkpoint candidate grid does not match "
                          "this search");
    }
    for (size_t i = 0; i < grid.size(); ++i) {
        done[i] = r.getU32() != 0 ? 1 : 0;
        if (done[i] != 0)
            records[i] = getCandidateRecord(r);
    }
    result.baselineAccuracy = baselineAccuracy;
    result.baselineEdp = baselineEdp;
    return Status();
}

} // namespace

OptimizerResult
optimizeDecomposition(const std::vector<uint8_t> &modelBytes,
                      const World &world, const OptimizerOptions &opts)
{
    require(opts.accuracyDropTolerance >= 0.0,
            "optimizeDecomposition: tau must be >= 0");
    require(!opts.candidateRanks.empty(),
            "optimizeDecomposition: no candidate ranks");

    OptimizerResult result;

    // EDP is computed either on the probe model's own shape or
    // projected onto the full Llama2-7B shape at the same reduction.
    const ModelConfig edpShape = llama2_7bConfig();
    auto edpEstimate = [&](const ModelConfig &probeCfg,
                           const DecompConfig &gamma) {
        if (!opts.projectEdpOnLlama7b)
            return estimateGeneration(probeCfg, gamma, opts.device,
                                      opts.workload);
        const DecompConfig projected = scheduleForReduction(
            edpShape, gamma.parameterReduction(probeCfg));
        return estimateGeneration(edpShape, projected, opts.device,
                                  opts.workload);
    };

    // Pruned candidate family (Section 3.4 insights): all tensors,
    // spread interior layer schedules, small ranks. Candidates are
    // independent (each deserializes its own probe model), so the
    // enumeration fans out across the pool; records land in a fixed
    // grid slot and the feasibility/best fold below runs serially in
    // enumeration order, keeping the result thread-count invariant.
    TransformerModel probe = TransformerModel::deserialize(modelBytes);
    const ModelConfig cfg = probe.config();
    std::vector<Candidate> grid;
    for (int64_t rank : opts.candidateRanks)
        for (int count = 1; count <= cfg.nLayers; ++count)
            grid.push_back({rank, count});

    std::vector<CandidateRecord> records(grid.size());
    std::vector<uint8_t> done(grid.size(), 0);
    result.gridSize = static_cast<int64_t>(grid.size());

    // Sharded sweeps: this process only evaluates the slots whose
    // stable key hash lands on its shard. The mask depends purely on
    // the grid coordinates and shardCount — never on LRD_THREADS or
    // timing — so every run partitions identically.
    require(opts.shardCount >= 1 && opts.shardIndex >= 0
                && opts.shardIndex < opts.shardCount,
            "optimizeDecomposition: bad shard spec");
    std::vector<uint8_t> owned(grid.size(), 1);
    if (opts.shardCount > 1) {
        int64_t numOwned = 0;
        for (size_t i = 0; i < grid.size(); ++i) {
            owned[i] = shardOfKey(candidateShardKey(grid[i].rank,
                                                    grid[i].count),
                                  opts.shardCount)
                               == opts.shardIndex
                           ? 1
                           : 0;
            numOwned += owned[i];
        }
        inform(strCat("dse: shard ", opts.shardIndex, "/",
                      opts.shardCount, " owns ", numOwned, " of ",
                      grid.size(), " candidates"));
    }

    bool resumed = false;
    if (opts.resume && !opts.checkpointPath.empty()) {
        Status rs =
            restoreDseCheckpoint(opts, result, grid, done, records);
        if (rs.ok()) {
            int64_t numDone = 0;
            for (uint8_t d : done)
                numDone += d != 0;
            inform(strCat("dse: resumed ", opts.checkpointPath, " with ",
                          numDone, " of ", grid.size(),
                          " candidates already evaluated"));
            resumed = true;
        } else if (rs.code() == StatusCode::NotFound) {
            inform("dse: no checkpoint yet; starting fresh");
        } else {
            fatal("dse: cannot resume: " + rs.toString());
        }
    }

    WatchdogSection watched("dse");
    bool baselineTainted = false;
    if (!resumed) {
        // Baseline accuracy and EDP on the dense model.
        TransformerModel dense = TransformerModel::deserialize(modelBytes);
        Evaluator ev(dense, world,
                     EvalOptions{opts.evalTasks, opts.evalSeed, false});
        result.baselineAccuracy = ev.aggregateAccuracy();
        const InferenceEstimate est =
            edpEstimate(cfg, DecompConfig::identity());
        result.baselineEdp = est.latencySec * est.energyJoules;
        // A cancel during the baseline eval leaves a partial accuracy;
        // never checkpoint it, so a resumed sweep recomputes it.
        baselineTainted = cancelRequested();
    }

    const auto total = static_cast<int64_t>(grid.size());
    const bool checkpointing =
        !opts.checkpointPath.empty() && opts.checkpointEvery > 0;
    const int64_t stride = checkpointing ? opts.checkpointEvery : total;
    auto runCandidates = [&](int64_t runBegin, int64_t runEnd) {
        parallelFor(
            runBegin, runEnd, 1, [&](int64_t lo, int64_t hi) {
                static Counter *candidates =
                    MetricsRegistry::instance().counter("dse.candidates");
                for (int64_t idx = lo; idx < hi; ++idx) {
                    if (owned[static_cast<size_t>(idx)] == 0)
                        continue; // Another shard's slot.
                    if (done[static_cast<size_t>(idx)] != 0)
                        continue; // Already evaluated before resume.
                    LRD_TRACE_SPAN("dse.candidate");
                    candidates->inc();
                    const Candidate &cand =
                        grid[static_cast<size_t>(idx)];
                    DecompConfig gamma = DecompConfig::allTensors(
                        cfg,
                        spreadSchedule(static_cast<int>(cfg.nLayers),
                                       cand.count),
                        cand.rank);

                    CandidateRecord rec;
                    rec.config = gamma;
                    rec.gridIndex = idx;
                    auto evaluate = [&] {
                        TransformerModel model =
                            TransformerModel::deserialize(modelBytes);
                        Status ds = gamma.applyTo(model);
                        if (!ds.ok()) {
                            rec.failed = true;
                            rec.failure = ds.toString();
                            return;
                        }
                        Evaluator ev(model, world,
                                     EvalOptions{opts.evalTasks,
                                                 opts.evalSeed, false});
                        rec.accuracy = ev.aggregateAccuracy();
                        rec.reduction = gamma.parameterReduction(cfg);
                        const InferenceEstimate est =
                            edpEstimate(cfg, gamma);
                        rec.latencySec = est.latencySec;
                        rec.energyJ = est.energyJoules;
                        rec.edp = est.latencySec * est.energyJoules;
                    };
                    if (robustPolicy().mode == RobustMode::Strict) {
                        evaluate();
                    } else {
                        // Graceful degradation: one faulted candidate
                        // is recorded and the sweep continues.
                        try {
                            evaluate();
                        } catch (const std::exception &e) {
                            rec.failed = true;
                            rec.failure = e.what();
                        }
                    }
                    if (cancelRequested())
                        continue; // Mid-candidate kill: drop the
                                  // partial record so a resumed sweep
                                  // re-evaluates this slot.
                    records[static_cast<size_t>(idx)] = std::move(rec);
                    done[static_cast<size_t>(idx)] = 1;
                }
            });
    };
    const auto countDone = [&] {
        int64_t n = 0;
        for (uint8_t d : done)
            n += d != 0;
        return n;
    };
    const int64_t doneAtStart = countDone();
    for (int64_t batchStart = 0; batchStart < total;
         batchStart += stride) {
        // Batch boundaries are the sweep's cancellation points: a
        // signal, an injected "dse.batch" cancel, or an expired
        // deadline stops here, after a final checkpoint has captured
        // every fully evaluated candidate.
        pollCancelFault("dse.batch");
        const int64_t batchEnd = std::min(total, batchStart + stride);
        Status cancel = checkCancellation("dse.batch");
        if (cancel.ok()) {
            const int64_t admitted =
                consumeWorkBudget("steps", batchEnd - batchStart);
            if (admitted > 0)
                runCandidates(batchStart, batchStart + admitted);
            if (admitted < batchEnd - batchStart)
                expireDeadline("dse.batch");
            // Re-check: a signal may have landed mid-batch.
            cancel = checkCancellation("dse.batch");
        }
        result.evaluatedThisRun = countDone() - doneAtStart;
        // Heartbeat before the checkpoint: if a crash lands between
        // the two, the lease has already banked this batch's work, so
        // the retry's re-evaluation of it is counted as recomputed
        // rather than silently absorbed.
        if (!opts.leasePath.empty()) {
            const Status ls = writeShardLease(
                opts.leasePath,
                ShardLease{static_cast<int64_t>(::getpid()),
                           opts.evalsEverBase + result.evaluatedThisRun});
            if (!ls.ok())
                warn("dse: shard lease heartbeat skipped; "
                     + ls.toString());
        }
        if (checkpointing && !baselineTainted)
            writeDseCheckpoint(opts, result, grid, done, records);
        if (!cancel.ok()) {
            result.cancelled = true;
            result.status = cancel;
            break;
        }
    }

    // Serial fold, shared with the shard merge so both produce
    // bitwise-identical results from identical records.
    std::vector<CandidateRecord> doneRecords;
    for (size_t i = 0; i < records.size(); ++i) {
        if (done[i] == 0)
            continue; // Cancelled before this slot, or another shard's.
        records[i].gridIndex = static_cast<int64_t>(i);
        doneRecords.push_back(std::move(records[i]));
    }
    const auto numDone = static_cast<int64_t>(doneRecords.size());
    OptimizerResult folded = foldCandidateRecords(
        result.baselineAccuracy, result.baselineEdp,
        opts.accuracyDropTolerance, std::move(doneRecords));
    result.best = std::move(folded.best);
    result.explored = std::move(folded.explored);
    result.numFailed = folded.numFailed;
    Status firstFailure;
    for (const CandidateRecord &rec : result.explored) {
        if (rec.failed) {
            firstFailure = Status(StatusCode::Internal, "dse.candidate",
                                  rec.failure);
            break;
        }
    }
    enforceFailureBudget("dse", result.numFailed, numDone, firstFailure);
    return result;
}

OptimizerResult
foldCandidateRecords(double baselineAccuracy, double baselineEdp,
                     double accuracyDropTolerance,
                     std::vector<CandidateRecord> records)
{
    OptimizerResult result;
    result.baselineAccuracy = baselineAccuracy;
    result.baselineEdp = baselineEdp;
    double bestEdp = std::numeric_limits<double>::infinity();
    bool haveBest = false;
    for (CandidateRecord &rec : records) {
        if (rec.failed) {
            ++result.numFailed;
            rec.feasible = false;
        } else {
            rec.feasible =
                std::max(baselineAccuracy - rec.accuracy, 0.0)
                < accuracyDropTolerance;
        }
        if (rec.feasible && rec.edp < bestEdp) {
            bestEdp = rec.edp;
            result.best = rec;
            haveBest = true;
        }
    }
    if (!haveBest) {
        // No decomposition satisfies tau: the identity is the answer.
        CandidateRecord identity;
        identity.config = DecompConfig::identity();
        identity.accuracy = baselineAccuracy;
        identity.edp = baselineEdp;
        identity.feasible = true;
        result.best = identity;
    }
    result.explored = std::move(records);
    return result;
}

} // namespace lrd
