#include "design_space.h"

#include <cmath>

#include "util/logging.h"

namespace lrd {

uint64_t
designSpaceSizeExact(int64_t nLayers, int64_t nTensors, int64_t rank)
{
    require(nLayers >= 1 && nTensors >= 1 && rank >= 1,
            "designSpaceSizeExact: dimensions must be >= 1");
    require(nLayers < 63 && nTensors < 63,
            "designSpaceSizeExact: use designSpaceSizeLog2 for large "
            "models");
    const uint64_t layerChoices = (1ULL << nLayers) - 1;
    const uint64_t tensorChoices = (1ULL << nTensors) - 1;
    // Overflow-checked product.
    __uint128_t total = static_cast<__uint128_t>(layerChoices)
                        * tensorChoices * static_cast<uint64_t>(rank);
    total += 1;
    require(total <= UINT64_MAX,
            "designSpaceSizeExact: size exceeds 64 bits; use "
            "designSpaceSizeLog2");
    return static_cast<uint64_t>(total);
}

double
designSpaceSizeLog2(int64_t nLayers, int64_t nTensors, int64_t rank)
{
    require(nLayers >= 1 && nTensors >= 1 && rank >= 1,
            "designSpaceSizeLog2: dimensions must be >= 1");
    // Exact when the count fits in 64 bits; otherwise the "+1" term
    // is far below double precision and log-space evaluation of
    // (2^L - 1)(2^K - 1) r is exact enough.
    if (nLayers < 63 && nTensors < 63) {
        const double l = std::exp2(static_cast<double>(nLayers)) - 1.0;
        const double k = std::exp2(static_cast<double>(nTensors)) - 1.0;
        const double total = l * k * static_cast<double>(rank) + 1.0;
        if (total < 9.0e18)
            return std::log2(total);
    }
    const double l = std::log2(std::exp2(static_cast<double>(nLayers)) - 1.0);
    const double k =
        std::log2(std::exp2(static_cast<double>(nTensors)) - 1.0);
    return l + k + std::log2(static_cast<double>(rank));
}

uint64_t
designSpaceSizeExact(const ModelConfig &cfg, int64_t rank)
{
    return designSpaceSizeExact(cfg.nLayers, cfg.numDecomposableTensors(),
                                rank);
}

double
designSpaceSizeLog2(const ModelConfig &cfg, int64_t rank)
{
    return designSpaceSizeLog2(cfg.nLayers, cfg.numDecomposableTensors(),
                               rank);
}

std::vector<DecompConfig>
enumerateUniformConfigs(const ModelConfig &cfg, int64_t maxRank)
{
    require(cfg.nLayers <= 16 && cfg.numDecomposableTensors() <= 16,
            "enumerateUniformConfigs: model too large to enumerate");
    const auto kinds = decomposableKinds(cfg.arch);
    const int64_t nL = cfg.nLayers;
    const auto nT = static_cast<int64_t>(kinds.size());

    std::vector<DecompConfig> out;
    out.push_back(DecompConfig::identity());
    for (uint64_t lMask = 1; lMask < (1ULL << nL); ++lMask) {
        std::vector<int> layers;
        for (int64_t l = 0; l < nL; ++l)
            if (lMask & (1ULL << l))
                layers.push_back(static_cast<int>(l));
        for (uint64_t tMask = 1; tMask < (1ULL << nT); ++tMask) {
            std::vector<WeightKind> tensors;
            for (int64_t t = 0; t < nT; ++t)
                if (tMask & (1ULL << t))
                    tensors.push_back(kinds[static_cast<size_t>(t)]);
            for (int64_t r = 1; r <= maxRank; ++r) {
                DecompConfig c;
                c.layers = layers;
                c.tensors = tensors;
                c.prunedRank = r;
                out.push_back(std::move(c));
            }
        }
    }
    return out;
}

} // namespace lrd
