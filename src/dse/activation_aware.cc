#include "activation_aware.h"

#include <cmath>

#include "util/logging.h"

namespace lrd {

ActivationScales
calibrateActivationScales(TransformerModel &model,
                          const DecompConfig &gamma,
                          const std::vector<TokenSeq> &calibrationDocs)
{
    std::string why;
    require(gamma.valid(model.config(), &why),
            "calibrateActivationScales: invalid gamma: " + why);
    require(!calibrationDocs.empty(),
            "calibrateActivationScales: no calibration documents");

    // Accumulate sum of squares and counts per (layer, kind, column).
    std::map<std::pair<int, int>, std::vector<double>> sumSq;
    std::map<std::pair<int, int>, int64_t> counts;
    for (const TokenSeq &doc : calibrationDocs) {
        (void)model.forward(doc);
        for (const PrunedRankEntry &e : gamma.prunedRanks()) {
            Linear &lin = model.linear(e.layer, e.kind);
            require(!lin.isFactorized(),
                    "calibrateActivationScales: model already "
                    "factorized");
            const Tensor &x = lin.lastInput();
            require(x.rank() == 2, "calibrateActivationScales: no "
                                   "cached input after forward");
            const auto key =
                std::make_pair(e.layer, static_cast<int>(e.kind));
            auto &acc = sumSq[key];
            if (acc.empty())
                acc.assign(static_cast<size_t>(x.dim(1)), 0.0);
            for (int64_t r = 0; r < x.dim(0); ++r) {
                const float *row = x.data() + r * x.dim(1);
                for (int64_t c = 0; c < x.dim(1); ++c)
                    acc[static_cast<size_t>(c)] +=
                        static_cast<double>(row[c]) * row[c];
            }
            counts[key] += x.dim(0);
        }
    }
    model.clearCache();

    ActivationScales scales;
    for (const auto &[key, acc] : sumSq) {
        std::vector<float> s(acc.size());
        const double n = static_cast<double>(counts.at(key));
        for (size_t c = 0; c < acc.size(); ++c) {
            // Small floor keeps dead features from blowing up 1/s.
            s[c] = static_cast<float>(
                std::sqrt(acc[c] / n) + 1e-3);
        }
        scales[key] = std::move(s);
    }
    return scales;
}

Status
applyActivationAware(TransformerModel &model, const DecompConfig &gamma,
                     const std::vector<TokenSeq> &calibrationDocs)
{
    const ActivationScales scales =
        calibrateActivationScales(model, gamma, calibrationDocs);
    for (const PrunedRankEntry &e : gamma.prunedRanks()) {
        const auto key = std::make_pair(e.layer, static_cast<int>(e.kind));
        const Status st = model.linear(e.layer, e.kind)
                              .factorizeActivationAware(e.rank,
                                                        scales.at(key));
        if (!st.ok())
            return st;
    }
    return Status();
}

} // namespace lrd
