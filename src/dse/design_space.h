/**
 * @file
 * The decomposition design space S_LR (Definition 5) and its size
 * (Theorem 3.2):
 *
 *   |S_LR(m)| = (2^N_Layers - 1) * (2^N_Tensors - 1) * rank + 1
 *
 * plus a brute-force enumerator used to validate the closed form on
 * small models and to drive exhaustive searches on the pruned space.
 */

#ifndef LRD_DSE_DESIGN_SPACE_H
#define LRD_DSE_DESIGN_SPACE_H

#include <cstdint>
#include <vector>

#include "model/decomp_config.h"

namespace lrd {

/**
 * Exact design-space size (Theorem 3.2) for dimensions small enough
 * to fit in 64 bits. @throws via fatal() on overflow.
 */
uint64_t designSpaceSizeExact(int64_t nLayers, int64_t nTensors,
                              int64_t rank);

/** log2 of the design-space size; valid for any model scale
 *  (Table 2's O(2^x) column). */
double designSpaceSizeLog2(int64_t nLayers, int64_t nTensors, int64_t rank);

/** Design-space size for a model config at a given uniform rank. */
uint64_t designSpaceSizeExact(const ModelConfig &cfg, int64_t rank);
double designSpaceSizeLog2(const ModelConfig &cfg, int64_t rank);

/**
 * Enumerate every valid uniform-rank configuration of the model:
 * all (non-empty layer subset) x (non-empty tensor subset) x
 * (rank in [1, maxRank]) combinations plus the identity. Exponential;
 * intended for tiny models (tests) and the paper's pruned O(32)
 * space.
 */
std::vector<DecompConfig> enumerateUniformConfigs(const ModelConfig &cfg,
                                                  int64_t maxRank);

} // namespace lrd

#endif // LRD_DSE_DESIGN_SPACE_H
