/**
 * @file
 * Layer-choice schedules: the literal Table 4 of the paper (for the
 * 32-layer Llama-2-7B shape) and a generator that applies the same
 * insights (skip the first two and last layers, spread decomposed
 * layers apart) to models of any depth.
 */

#ifndef LRD_DSE_SCHEDULES_H
#define LRD_DSE_SCHEDULES_H

#include <vector>

#include "model/decomp_config.h"

namespace lrd {

/** One row of the paper's Table 4. */
struct Table4Row
{
    double reductionPercent;      ///< Paper-reported parameter reduction.
    std::vector<int> layers1Based; ///< Layer list exactly as printed.
};

/** The paper's Table 4 (layer indices are 1-based, 32-layer model). */
const std::vector<Table4Row> &paperTable4();

/** A Table 4 row's layers converted to 0-based indices. */
std::vector<int> table4Layers0Based(const Table4Row &row);

/**
 * Generate `count` decomposed layers for an `nLayers`-deep model
 * following the characterization insights: prefer the interior
 * (skip layers 0, 1 and the last layer while possible) and spread
 * selections as far apart as possible.
 */
std::vector<int> spreadSchedule(int nLayers, int count);

/**
 * All-tensor rank-1 configuration whose parameter reduction is as
 * close as possible to `targetReduction` (fraction of total params),
 * with layers chosen by spreadSchedule().
 */
DecompConfig scheduleForReduction(const ModelConfig &cfg,
                                  double targetReduction);

/** The ladder of reduction targets used by the case-study figures,
 *  scaled from the paper's Table 4 percentages. */
std::vector<double> caseStudyReductionTargets(const ModelConfig &cfg);

} // namespace lrd

#endif // LRD_DSE_SCHEDULES_H
