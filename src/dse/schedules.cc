#include "schedules.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace lrd {

const std::vector<Table4Row> &
paperTable4()
{
    static const std::vector<Table4Row> kTable = {
        {6.0, {3, 30}},
        {9.0, {3, 18, 32}},
        {15.0, {3, 9, 15, 21, 27}},
        {21.0, {5, 9, 13, 17, 21, 25, 29}},
        {33.0, {3, 6, 9, 12, 15, 18, 21, 24, 27, 30, 32}},
        {48.0, {1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 29,
                31}},
        {60.0, {2, 4, 6, 8, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 21,
                23, 25, 27, 29, 31}},
        {75.0, {2, 4, 6, 8, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20,
                21, 22, 23, 24, 25, 26, 27, 28, 29, 30}},
        {84.0, {1, 3, 5, 7, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19,
                20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32}},
        {96.0, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
                17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30,
                31, 32}},
    };
    return kTable;
}

std::vector<int>
table4Layers0Based(const Table4Row &row)
{
    std::vector<int> out;
    out.reserve(row.layers1Based.size());
    for (int l : row.layers1Based)
        out.push_back(l - 1);
    return out;
}

std::vector<int>
spreadSchedule(int nLayers, int count)
{
    require(nLayers >= 1, "spreadSchedule: nLayers must be >= 1");
    require(count >= 0 && count <= nLayers,
            strCat("spreadSchedule: count ", count,
                   " out of range for ", nLayers, " layers"));
    if (count == 0)
        return {};

    // Preferred interior candidates (insight: the first two and last
    // layers are the most decomposition-sensitive).
    std::vector<int> interior;
    for (int l = 2; l < nLayers - 1; ++l)
        interior.push_back(l);

    std::vector<int> picked;
    if (count <= static_cast<int>(interior.size())) {
        // Evenly spaced picks from the interior (insight: spread the
        // decomposed layers as far apart as possible).
        const auto m = static_cast<double>(interior.size());
        for (int i = 0; i < count; ++i) {
            const auto idx = static_cast<size_t>(
                std::min(m - 1.0, std::floor((i + 0.5) * m / count)));
            picked.push_back(interior[idx]);
        }
        std::sort(picked.begin(), picked.end());
        picked.erase(std::unique(picked.begin(), picked.end()),
                     picked.end());
        // Rounding collisions: fill with unused interior layers.
        for (int l : interior) {
            if (static_cast<int>(picked.size()) >= count)
                break;
            if (std::find(picked.begin(), picked.end(), l)
                == picked.end())
                picked.push_back(l);
        }
    } else {
        // The interior alone is not enough: add sensitive layers back
        // in order of increasing sensitivity (last, second, first).
        // For very shallow models the fallback entries can coincide,
        // so skip anything already picked.
        picked = interior;
        const std::vector<int> fallback = {nLayers - 1, 1, 0};
        for (int l : fallback) {
            if (static_cast<int>(picked.size()) >= count)
                break;
            if (l >= 0 && l < nLayers
                && std::find(picked.begin(), picked.end(), l)
                       == picked.end())
                picked.push_back(l);
        }
    }
    std::sort(picked.begin(), picked.end());
    picked.resize(static_cast<size_t>(count));
    return picked;
}

DecompConfig
scheduleForReduction(const ModelConfig &cfg, double targetReduction)
{
    require(targetReduction >= 0.0 && targetReduction <= 1.0,
            "scheduleForReduction: target must be in [0, 1]");
    if (targetReduction == 0.0)
        return DecompConfig::identity();
    const DecompConfig oneLayer = DecompConfig::allTensors(cfg, {0}, 1);
    const double perLayer = oneLayer.parameterReduction(cfg);
    int count = static_cast<int>(std::lround(targetReduction / perLayer));
    count = std::max(1, std::min<int>(count, static_cast<int>(cfg.nLayers)));
    return DecompConfig::allTensors(
        cfg, spreadSchedule(static_cast<int>(cfg.nLayers), count), 1);
}

std::vector<double>
caseStudyReductionTargets(const ModelConfig &cfg)
{
    // The achievable all-tensor rank-1 ladder for this model depth:
    // one entry per decomposed-layer count (the analogue of Table 4's
    // 6%..96% ladder for the 32-layer model).
    std::vector<double> targets;
    const DecompConfig oneLayer = DecompConfig::allTensors(cfg, {0}, 1);
    const double perLayer = oneLayer.parameterReduction(cfg);
    for (int64_t k = 1; k <= cfg.nLayers; ++k)
        targets.push_back(perLayer * static_cast<double>(k));
    return targets;
}

} // namespace lrd
