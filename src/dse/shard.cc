#include "dse/shard.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "obs/metrics.h"
#include "robust/cancel.h"
#include "robust/checkpoint.h"
#include "robust/fault.h"
#include "robust/signal.h"
#include "util/logging.h"

namespace fs = std::filesystem;

namespace lrd {

namespace {

/** Payload-format versions of the shard protocol files. */
constexpr uint32_t kShardLeaseVersion = 1;
constexpr uint32_t kShardResultVersion = 1;
constexpr uint32_t kDseResultVersion = 1;

void
putDecompConfig(ByteWriter &w, const DecompConfig &c)
{
    w.putU64(c.layers.size());
    for (int l : c.layers)
        w.putU32(static_cast<uint32_t>(l));
    w.putU64(c.tensors.size());
    for (WeightKind k : c.tensors)
        w.putU32(static_cast<uint32_t>(k));
    w.putU64(static_cast<uint64_t>(c.prunedRank));
    w.putU64(c.rankOverrides.size());
    for (const auto &[key, rank] : c.rankOverrides) {
        w.putU32(static_cast<uint32_t>(key.first));
        w.putU32(static_cast<uint32_t>(key.second));
        w.putU64(static_cast<uint64_t>(rank));
    }
}

DecompConfig
getDecompConfig(ByteReader &r)
{
    DecompConfig c;
    const uint64_t nLayers = r.getU64();
    c.layers.resize(nLayers);
    for (uint64_t i = 0; i < nLayers; ++i)
        c.layers[i] = static_cast<int>(r.getU32());
    const uint64_t nTensors = r.getU64();
    c.tensors.resize(nTensors);
    for (uint64_t i = 0; i < nTensors; ++i)
        c.tensors[i] = static_cast<WeightKind>(r.getU32());
    c.prunedRank = static_cast<int64_t>(r.getU64());
    const uint64_t nOverrides = r.getU64();
    for (uint64_t i = 0; i < nOverrides; ++i) {
        const int layer = static_cast<int>(r.getU32());
        const int kind = static_cast<int>(r.getU32());
        c.rankOverrides[{layer, kind}] = static_cast<int64_t>(r.getU64());
    }
    return c;
}

/** Non-negative decimal integer, or -1 on any other input. */
int64_t
parseDecimal(const std::string &text)
{
    if (text.empty()
        || text.find_first_not_of("0123456789") != std::string::npos
        || text.size() > 18)
        return -1;
    int64_t v = 0;
    for (char c : text)
        v = v * 10 + (c - '0');
    return v;
}

Status
shardFileError(const std::string &path, const std::string &why)
{
    return Status(StatusCode::DataLoss, "dse.shard.merge",
                  path + ": " + why);
}

} // namespace

Result<ShardSpec>
parseShardSpec(const std::string &text)
{
    const Status bad(StatusCode::InvalidArgument, "dse.shard",
                     "--shard wants i/n with 0 <= i < n, got '" + text
                         + "'");
    const size_t slash = text.find('/');
    if (slash == std::string::npos)
        return bad;
    const int64_t index = parseDecimal(text.substr(0, slash));
    const int64_t count = parseDecimal(text.substr(slash + 1));
    if (index < 0 || count < 1 || index >= count || count > 4096)
        return bad;
    ShardSpec spec;
    spec.index = static_cast<int>(index);
    spec.count = static_cast<int>(count);
    return spec;
}

uint64_t
candidateShardKey(int64_t rank, int count)
{
    // splitmix64 finalizer over the packed slot coordinates: stable
    // across runs, hosts, and thread counts by construction.
    uint64_t x = (static_cast<uint64_t>(rank) << 32)
                 ^ static_cast<uint64_t>(static_cast<uint32_t>(count));
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

int
shardOfKey(uint64_t key, int shardCount)
{
    require(shardCount >= 1, "shardOfKey: shardCount must be >= 1");
    return static_cast<int>(key % static_cast<uint64_t>(shardCount));
}

std::string
shardCheckpointPath(const std::string &dir, int index)
{
    return (fs::path(dir) / ("shard-" + std::to_string(index) + ".ckpt"))
        .string();
}

std::string
shardLeasePath(const std::string &dir, int index)
{
    return (fs::path(dir) / ("shard-" + std::to_string(index) + ".lease"))
        .string();
}

std::string
shardResultPath(const std::string &dir, int index)
{
    return (fs::path(dir) / ("shard-" + std::to_string(index) + ".result"))
        .string();
}

Status
writeShardLease(const std::string &path, const ShardLease &lease)
{
    ByteWriter w;
    w.putU64(static_cast<uint64_t>(lease.pid));
    w.putU64(static_cast<uint64_t>(lease.evalsEver));
    return writeCheckpoint(path, kShardLeaseVersion, w.bytes());
}

Result<ShardLease>
readShardLease(const std::string &path)
{
    Result<std::vector<uint8_t>> payload =
        readCheckpointWithFallback(path, kShardLeaseVersion);
    if (!payload.ok())
        return payload.status();
    ByteReader r(std::move(payload).value());
    ShardLease lease;
    lease.pid = static_cast<int64_t>(r.getU64());
    lease.evalsEver = static_cast<int64_t>(r.getU64());
    return lease;
}

double
shardLeaseAgeSeconds(const std::string &path)
{
    std::error_code ec;
    const fs::file_time_type mtime = fs::last_write_time(path, ec);
    if (ec)
        return -1.0;
    const auto age = fs::file_time_type::clock::now() - mtime;
    return std::chrono::duration<double>(age).count();
}

void
putCandidateRecord(ByteWriter &w, const CandidateRecord &rec)
{
    putDecompConfig(w, rec.config);
    w.putU64(static_cast<uint64_t>(rec.gridIndex));
    w.putF64(rec.accuracy);
    w.putF64(rec.latencySec);
    w.putF64(rec.energyJ);
    w.putF64(rec.edp);
    w.putF64(rec.reduction);
    w.putU32(rec.feasible ? 1 : 0);
    w.putU32(rec.failed ? 1 : 0);
    w.putString(rec.failure);
}

CandidateRecord
getCandidateRecord(ByteReader &r)
{
    CandidateRecord rec;
    rec.config = getDecompConfig(r);
    rec.gridIndex = static_cast<int64_t>(r.getU64());
    rec.accuracy = r.getF64();
    rec.latencySec = r.getF64();
    rec.energyJ = r.getF64();
    rec.edp = r.getF64();
    rec.reduction = r.getF64();
    rec.feasible = r.getU32() != 0;
    rec.failed = r.getU32() != 0;
    rec.failure = r.getString();
    return rec;
}

Status
writeShardResultFile(const std::string &path, const ShardResultFile &file)
{
    ByteWriter w;
    w.putU32(static_cast<uint32_t>(file.shard.index));
    w.putU32(static_cast<uint32_t>(file.shard.count));
    w.putU64(file.gridSize);
    w.putU64(static_cast<uint64_t>(file.evalsEver));
    w.putF64(file.baselineAccuracy);
    w.putF64(file.baselineEdp);
    w.putU64(file.records.size());
    for (const CandidateRecord &rec : file.records)
        putCandidateRecord(w, rec);
    return writeCheckpoint(path, kShardResultVersion, w.bytes());
}

Result<ShardResultFile>
readShardResultFile(const std::string &path)
{
    Result<std::vector<uint8_t>> payload =
        readCheckpoint(path, kShardResultVersion);
    if (!payload.ok())
        return payload.status();
    ByteReader r(std::move(payload).value());
    ShardResultFile file;
    file.shard.index = static_cast<int>(r.getU32());
    file.shard.count = static_cast<int>(r.getU32());
    file.gridSize = r.getU64();
    file.evalsEver = static_cast<int64_t>(r.getU64());
    file.baselineAccuracy = r.getF64();
    file.baselineEdp = r.getF64();
    const uint64_t n = r.getU64();
    if (n > file.gridSize)
        return shardFileError(path, "more records than grid slots");
    file.records.reserve(n);
    for (uint64_t i = 0; i < n; ++i)
        file.records.push_back(getCandidateRecord(r));
    return file;
}

Status
writeDseResultFile(const std::string &path, const OptimizerResult &result)
{
    ByteWriter w;
    w.putF64(result.baselineAccuracy);
    w.putF64(result.baselineEdp);
    w.putU32(static_cast<uint32_t>(result.numFailed));
    putCandidateRecord(w, result.best);
    w.putU64(result.explored.size());
    for (const CandidateRecord &rec : result.explored)
        putCandidateRecord(w, rec);
    return writeCheckpoint(path, kDseResultVersion, w.bytes());
}

Result<MergeReport>
mergeShardResults(const std::string &dir, int shardCount,
                  double accuracyDropTolerance)
{
    static Counter *merged =
        MetricsRegistry::instance().counter("dse.shard.merged");
    static Counter *recomputed =
        MetricsRegistry::instance().counter("dse.shard.recomputed");

    pollCancelFault("dse.shard.merge");
    const Status cancel = checkCancellation("dse.shard.merge");
    if (!cancel.ok())
        return cancel;
    if (faultAt("dse.shard.merge", FaultKind::Alloc))
        return Status(StatusCode::ResourceExhausted, "dse.shard.merge",
                      "injected allocation failure");
    if (shardCount < 1)
        return Status(StatusCode::InvalidArgument, "dse.shard.merge",
                      "shardCount must be >= 1");

    MergeReport report;
    uint64_t gridSize = 0;
    double baselineAccuracy = 0.0;
    double baselineEdp = 0.0;
    std::vector<CandidateRecord> slots;
    std::vector<uint8_t> seen;
    // Fixed shard-order reduction: shard 0's header seeds the grid
    // shape and baseline; every later shard must agree bitwise.
    for (int i = 0; i < shardCount; ++i) {
        const std::string path = shardResultPath(dir, i);
        Result<ShardResultFile> loaded = readShardResultFile(path);
        if (!loaded.ok())
            return loaded.status();
        const ShardResultFile &sf = loaded.value();
        if (sf.shard.index != i || sf.shard.count != shardCount)
            return shardFileError(
                path, strCat("header says shard ", sf.shard.index, "/",
                             sf.shard.count, ", expected ", i, "/",
                             shardCount));
        if (i == 0) {
            gridSize = sf.gridSize;
            baselineAccuracy = sf.baselineAccuracy;
            baselineEdp = sf.baselineEdp;
            slots.resize(gridSize);
            seen.assign(gridSize, 0);
        } else {
            if (sf.gridSize != gridSize)
                return shardFileError(
                    path, strCat("grid size ", sf.gridSize,
                                 " does not match shard 0's ", gridSize));
            // Baselines come from deterministic evaluations of the
            // same model bytes, so agreement must be bitwise.
            if (std::memcmp(&sf.baselineAccuracy, &baselineAccuracy,
                            sizeof(double))
                    != 0
                || std::memcmp(&sf.baselineEdp, &baselineEdp,
                               sizeof(double))
                       != 0)
                return shardFileError(
                    path, "baseline metrics differ from shard 0's "
                          "(non-deterministic shard runs?)");
        }
        for (const CandidateRecord &rec : sf.records) {
            if (rec.gridIndex < 0
                || rec.gridIndex >= static_cast<int64_t>(gridSize))
                return shardFileError(
                    path, strCat("record grid index ", rec.gridIndex,
                                 " out of range"));
            const auto slot = static_cast<size_t>(rec.gridIndex);
            if (seen[slot] != 0)
                return shardFileError(
                    path, strCat("grid slot ", rec.gridIndex,
                                 " covered twice"));
            seen[slot] = 1;
            slots[slot] = rec;
        }
        report.evalsEver += sf.evalsEver;
        ++report.shardsMerged;
    }
    for (uint64_t i = 0; i < gridSize; ++i)
        if (seen[i] == 0)
            return Status(StatusCode::DataLoss, "dse.shard.merge",
                          strCat("grid slot ", i,
                                 " covered by no shard result file"));

    report.result = foldCandidateRecords(baselineAccuracy, baselineEdp,
                                         accuracyDropTolerance,
                                         std::move(slots));
    report.result.gridSize = static_cast<int64_t>(gridSize);
    report.recomputed =
        std::max<int64_t>(0, report.evalsEver
                                 - static_cast<int64_t>(gridSize));
    merged->add(report.shardsMerged);
    recomputed->add(report.recomputed);
    return report;
}

} // namespace lrd
