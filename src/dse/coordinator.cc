#include "coordinator.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include <sys/wait.h>
#include <unistd.h>

#include "dse/optimizer.h"
#include "obs/metrics.h"
#include "robust/cancel.h"
#include "robust/checkpoint.h"
#include "robust/fault.h"
#include "robust/retry.h"
#include "robust/signal.h"
#include "util/logging.h"

namespace fs = std::filesystem;

namespace lrd {

Result<OptimizerResult>
runDseShard(const std::vector<uint8_t> &modelBytes, const World &world,
            OptimizerOptions opts, const ShardSpec &shard,
            const std::string &dir)
{
    if (shard.count < 1 || shard.index < 0 || shard.index >= shard.count)
        return Status(StatusCode::InvalidArgument, "dse.shard",
                      strCat("bad shard spec ", shard.index, "/",
                             shard.count));
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return Status(StatusCode::InvalidArgument, "dse.shard",
                      strCat("cannot create results dir ", dir, ": ",
                             ec.message()));

    // A relaunch inherits the cumulative evaluation count from the
    // previous attempt's lease; a live holder means another process
    // is still sweeping this shard and we must not double-run it.
    const std::string leasePath = shardLeasePath(dir, shard.index);
    int64_t evalsEverBase = 0;
    Result<ShardLease> prior = readShardLease(leasePath);
    if (prior.ok()) {
        const ShardLease &lease = prior.value();
        if (lease.pid != static_cast<int64_t>(::getpid())
            && processAlive(lease.pid))
            return Status(StatusCode::InvalidArgument, "dse.shard",
                          strCat("shard ", shard.index,
                                 " lease held by live pid ", lease.pid));
        evalsEverBase = lease.evalsEver;
    } else if (prior.status().code() == StatusCode::DataLoss) {
        warn("dse: shard " + std::to_string(shard.index)
             + " lease unreadable; restarting its evaluation count: "
             + prior.status().toString());
    }
    Status claim = writeShardLease(
        leasePath,
        ShardLease{static_cast<int64_t>(::getpid()), evalsEverBase});
    if (!claim.ok())
        return claim;

    opts.shardIndex = shard.index;
    opts.shardCount = shard.count;
    opts.checkpointPath = shardCheckpointPath(dir, shard.index);
    opts.leasePath = leasePath;
    opts.evalsEverBase = evalsEverBase;
    opts.resume = true;

    OptimizerResult result = optimizeDecomposition(modelBytes, world, opts);
    if (result.cancelled)
        // Checkpoint and lease stay behind: the next attempt resumes
        // from them instead of re-evaluating the completed prefix.
        return result.status;

    ShardResultFile out;
    out.shard = shard;
    out.gridSize = static_cast<uint64_t>(result.gridSize);
    out.evalsEver = evalsEverBase + result.evaluatedThisRun;
    out.baselineAccuracy = result.baselineAccuracy;
    out.baselineEdp = result.baselineEdp;
    out.records = result.explored; // Already gridIndex-ascending.
    Status ws = writeShardResultFile(shardResultPath(dir, shard.index),
                                     out);
    if (!ws.ok())
        return ws;
    // The evaluation count now lives in the result file; dropping the
    // lease (and its checkpoint-rotation sibling, which the fallback
    // reader would otherwise resurrect) tells the supervisor this
    // shard needs no reclamation.
    fs::remove(leasePath, ec);
    fs::remove(leasePath + ".prev", ec);
    return result;
}

namespace {

/** Replace every "{shard}" in `arg` with "index/count". */
std::string
substituteShardToken(const std::string &arg, int index, int count)
{
    static const char token[] = "{shard}";
    std::string outArg;
    size_t pos = 0;
    for (;;) {
        const size_t hit = arg.find(token, pos);
        if (hit == std::string::npos) {
            outArg.append(arg, pos, std::string::npos);
            return outArg;
        }
        outArg.append(arg, pos, hit - pos);
        outArg += strCat(index, "/", count);
        pos = hit + sizeof(token) - 1;
    }
}

/** Human description of a waitpid status. */
std::string
describeExit(int waitStatus)
{
    if (WIFEXITED(waitStatus))
        return strCat("exit code ", WEXITSTATUS(waitStatus));
    if (WIFSIGNALED(waitStatus))
        return strCat("killed by signal ", WTERMSIG(waitStatus));
    return strCat("wait status ", waitStatus);
}

} // namespace

SupervisorReport
superviseDse(const SupervisorOptions &opts)
{
    static Counter *launchedCtr =
        MetricsRegistry::instance().counter("dse.shard.launched");
    static Counter *retriedCtr =
        MetricsRegistry::instance().counter("dse.shard.retried");
    static Counter *reclaimedCtr =
        MetricsRegistry::instance().counter("dse.shard.reclaimed");
    static Counter *failedCtr =
        MetricsRegistry::instance().counter("dse.shard.failed");

    SupervisorReport rep;
    if (opts.shards < 1 || opts.shards > 4096) {
        rep.status = Status(StatusCode::InvalidArgument, "dse.shard",
                            strCat("shard count ", opts.shards,
                                   " outside [1, 4096]"));
        return rep;
    }
    if (opts.childArgs.empty()) {
        rep.status = Status(StatusCode::InvalidArgument, "dse.shard",
                            "supervisor needs a child argv");
        return rep;
    }
    std::error_code ec;
    fs::create_directories(opts.dir, ec);
    if (ec) {
        rep.status =
            Status(StatusCode::InvalidArgument, "dse.shard",
                   strCat("cannot create results dir ", opts.dir, ": ",
                          ec.message()));
        return rep;
    }

    // Startup reconciliation: sweep half-written checkpoints whose
    // writers are gone, skip shards that already finished, and
    // reclaim leases whose holders died or stopped heartbeating. The
    // reclaimed lease file is kept — its evaluation count must
    // survive into the relaunch so recomputed work stays countable.
    rep.orphanTmpsSwept = sweepOrphanCheckpointTmps(opts.dir);

    struct ShardState
    {
        int attempts = 0; ///< Launches so far (first try included).
        pid_t pid = -1;
        bool done = false;
    };
    std::vector<ShardState> shards(opts.shards);

    for (int i = 0; i < opts.shards; ++i) {
        if (readShardResultFile(shardResultPath(opts.dir, i)).ok()) {
            shards[i].done = true;
            ++rep.skipped;
            continue;
        }
        const std::string leasePath = shardLeasePath(opts.dir, i);
        Result<ShardLease> lease = readShardLease(leasePath);
        if (!lease.ok())
            continue; // Absent or corrupt: the child rewrites it.
        const double age = shardLeaseAgeSeconds(leasePath);
        const bool fresh = age >= 0 && age <= opts.staleLeaseSeconds;
        if (processAlive(lease.value().pid) && fresh) {
            rep.status = Status(
                StatusCode::InvalidArgument, "dse.shard",
                strCat("shard ", i, " lease held by live pid ",
                       lease.value().pid, " (heartbeat ", age,
                       "s old): another supervisor owns ", opts.dir));
            return rep;
        }
        warn(strCat("dse: reclaiming shard ", i, " lease (pid ",
                    lease.value().pid, ", heartbeat ", age, "s old, ",
                    lease.value().evalsEver, " evals banked)"));
        ++rep.reclaimed;
        reclaimedCtr->inc();
    }

    const auto terminateRunning = [&shards] {
        for (ShardState &s : shards)
            if (s.pid > 0)
                ::kill(s.pid, SIGTERM);
        for (ShardState &s : shards) {
            if (s.pid <= 0)
                continue;
            int waitStatus = 0;
            while (::waitpid(s.pid, &waitStatus, 0) < 0
                   && errno == EINTR) {
            }
            s.pid = -1;
        }
    };

    // One launch attempt: cancellation poll, injected spawn faults,
    // then fork/exec. The child sheds the supervisor's observability
    // sinks so its shutdown flush cannot clobber parent artifacts,
    // and _exit(127)s if exec fails (the shell convention).
    const auto spawnOnce = [&](int i) -> Status {
        pollCancelFault("dse.shard.spawn");
        Status cancel = checkCancellation("dse.shard.spawn");
        if (!cancel.ok())
            return cancel;
        if (faultAt("dse.shard.spawn", FaultKind::Alloc))
            return Status(StatusCode::ResourceExhausted,
                          "dse.shard.spawn",
                          "injected allocation failure");
        std::vector<std::string> argvStore;
        argvStore.reserve(opts.childArgs.size());
        for (const std::string &arg : opts.childArgs)
            argvStore.push_back(
                substituteShardToken(arg, i, opts.shards));
        std::vector<char *> argv;
        argv.reserve(argvStore.size() + 1);
        for (std::string &arg : argvStore)
            argv.push_back(arg.data());
        argv.push_back(nullptr);
        const pid_t pid = ::fork();
        if (pid < 0)
            return Status(StatusCode::ResourceExhausted,
                          "dse.shard.spawn",
                          strCat("fork failed: errno ", errno));
        if (pid == 0) {
            ::unsetenv("LRD_TELEMETRY");
            ::unsetenv("LRD_TRACE");
            ::unsetenv("LRD_STATS");
            ::execv(argv[0], argv.data());
            ::_exit(127);
        }
        shards[i].pid = pid;
        ++rep.launched;
        launchedCtr->inc();
        inform(strCat("dse: launched shard ", i, "/", opts.shards,
                      " as pid ", pid, " (attempt ",
                      shards[i].attempts, ")"));
        return Status();
    };

    // Launch with the retry budget applied to failed spawns too: a
    // fork/exec that never produced a child still consumes an
    // attempt, with the same backoff schedule as a crashed one.
    const auto launchShard = [&](int i) -> Status {
        for (;;) {
            ++shards[i].attempts;
            Status s = spawnOnce(i);
            if (s.ok())
                return s;
            if (s.code() == StatusCode::Cancelled
                || s.code() == StatusCode::DeadlineExceeded)
                return s;
            warn(strCat("dse: shard ", i, " launch attempt ",
                        shards[i].attempts, " failed: ", s.toString()));
            if (shards[i].attempts > opts.maxRetries) {
                ++rep.failed;
                failedCtr->inc();
                return Status(StatusCode::Internal, "dse.shard.retry",
                              strCat("shard ", i, " failed after ",
                                     shards[i].attempts,
                                     " attempts (last: ", s.toString(),
                                     ")"));
            }
            ++rep.retried;
            retriedCtr->inc();
            sleepForBackoff(backoffTicks(opts.backoffBaseTicks,
                                         shards[i].attempts - 1));
        }
    };

    int running = 0;
    for (int i = 0; i < opts.shards && rep.status.ok(); ++i) {
        if (shards[i].done)
            continue;
        rep.status = launchShard(i);
        if (rep.status.ok())
            ++running;
    }

    // Supervision loop: block in waitpid until a child changes state.
    // EINTR is the cancellation path — a SIGINT/SIGTERM to the
    // supervisor interrupts the wait, we notice the cooperative
    // cancel, and the children get SIGTERMed below.
    while (running > 0 && rep.status.ok()) {
        int waitStatus = 0;
        const pid_t pid = ::waitpid(-1, &waitStatus, 0);
        if (pid < 0) {
            if (errno == EINTR) {
                Status cancel = checkCancellation("dse.shard.spawn");
                if (!cancel.ok())
                    rep.status = cancel;
                continue;
            }
            rep.status = Status(
                StatusCode::Internal, "dse.shard",
                strCat("waitpid failed with errno ", errno, " while ",
                       running, " shards were running"));
            break;
        }
        int idx = -1;
        for (int i = 0; i < opts.shards; ++i)
            if (shards[i].pid == pid)
                idx = i;
        if (idx < 0)
            continue; // Some other subsystem's child; not ours.
        shards[idx].pid = -1;
        --running;

        // "Success" is exit 0 AND a readable result file: a child
        // killed between its result write and exit, or one that
        // exited cleanly without finishing, both count as failures
        // and rerun from their checkpoint.
        const bool exitedOk =
            WIFEXITED(waitStatus) && WEXITSTATUS(waitStatus) == 0;
        if (exitedOk
            && readShardResultFile(shardResultPath(opts.dir, idx))
                   .ok()) {
            shards[idx].done = true;
            inform(strCat("dse: shard ", idx, " completed (attempt ",
                          shards[idx].attempts, ")"));
            continue;
        }
        const std::string why =
            exitedOk ? std::string("exit 0 without a result file")
                     : describeExit(waitStatus);
        warn(strCat("dse: shard ", idx, " attempt ",
                    shards[idx].attempts, " died: ", why));
        if (shards[idx].attempts > opts.maxRetries) {
            ++rep.failed;
            failedCtr->inc();
            rep.status = Status(
                StatusCode::Internal, "dse.shard.retry",
                strCat("shard ", idx, " failed after ",
                       shards[idx].attempts, " attempts (last: ", why,
                       ")"));
            break;
        }
        ++rep.retried;
        retriedCtr->inc();
        sleepForBackoff(backoffTicks(opts.backoffBaseTicks,
                                     shards[idx].attempts - 1));
        rep.status = launchShard(idx);
        if (rep.status.ok())
            ++running;
    }

    if (!rep.status.ok()) {
        terminateRunning();
        return rep;
    }

    Result<MergeReport> merge = mergeShardResults(
        opts.dir, opts.shards, opts.accuracyDropTolerance);
    if (!merge.ok()) {
        rep.status = merge.status();
        return rep;
    }
    rep.result = std::move(merge.value().result);
    rep.shardsMerged = merge.value().shardsMerged;
    rep.evalsEver = merge.value().evalsEver;
    rep.recomputed = merge.value().recomputed;
    return rep;
}

} // namespace lrd
