/**
 * @file
 * Crash-safe supervision of a sharded DSE sweep.
 *
 * The supervisor (`lrdtool dse --supervise=n`) spawns one child
 * process per shard with plain fork/exec — coordination is files in a
 * shared results directory (dse/shard.h), never RPC — and watches
 * exit codes. A shard that dies is relaunched with exponential
 * backoff (backoffTicks / sleepForBackoff) up to a bounded retry
 * budget; the relaunch resumes from the shard's own checkpoint, so
 * completed candidates are never re-evaluated and never
 * double-counted. When every shard has landed its result file, the
 * supervisor folds them into output bitwise identical to a serial
 * `lrdtool dse` run.
 *
 * Supervision state machine, per shard:
 *
 *     pending --spawn--> running --exit 0 + result file--> done
 *        ^                  |
 *        |                  +--exit != 0 / missing result--+
 *        |                                                 |
 *        +---- attempts <= maxRetries: backoff, respawn ---+
 *                                                          |
 *              attempts >  maxRetries: FAILED  <-----------+
 *                          (Status at site "dse.shard.retry";
 *                           lrdtool maps it to exit code 8)
 *
 * Startup reconciliation: orphaned checkpoint `.tmp` files from dead
 * writers are swept, stale leases (dead pid, or heartbeat older than
 * staleLeaseSeconds) are reclaimed — the lease file itself is kept so
 * the relaunch inherits its cumulative evaluation count — and shards
 * that already have a valid result file are skipped entirely.
 */

#ifndef LRD_DSE_COORDINATOR_H
#define LRD_DSE_COORDINATOR_H

#include <string>
#include <vector>

#include "dse/shard.h"

namespace lrd {

/**
 * Run one shard of the sweep in this process: claim the shard's
 * lease (refusing if a live other process holds a fresh one), resume
 * from the shard checkpoint when present, evaluate the owned slots,
 * and on clean completion write shard-<i>.result and drop the lease.
 * A cancelled sweep returns its Cancelled/DeadlineExceeded status and
 * leaves checkpoint + lease behind for the next attempt.
 */
Result<OptimizerResult> runDseShard(const std::vector<uint8_t> &modelBytes,
                                    const World &world,
                                    OptimizerOptions opts,
                                    const ShardSpec &shard,
                                    const std::string &dir);

/** Supervisor knobs. */
struct SupervisorOptions
{
    int shards = 1;            ///< Number of child shards to run.
    std::string dir;           ///< Shared results directory.
    /**
     * argv of a shard child; every "{shard}" token is replaced with
     * "i/n". Children inherit the environment minus the supervisor's
     * observability sinks (LRD_TELEMETRY / LRD_TRACE / LRD_STATS), so
     * child flushes cannot clobber the parent's artifacts.
     */
    std::vector<std::string> childArgs;
    int maxRetries = 3;        ///< Relaunches allowed per shard.
    int64_t backoffBaseTicks = 100;  ///< ms; doubles per attempt.
    double staleLeaseSeconds = 900;  ///< Heartbeat age → stale.
    double accuracyDropTolerance = 0.05; ///< tau, for the merge fold.
};

/** What the supervisor did, for the CLI rollup and the chaos gate. */
struct SupervisorReport
{
    Status status;          ///< Ok, or why supervision stopped.
    OptimizerResult result; ///< Merged result (when status is ok).
    int launched = 0;       ///< Child processes spawned (incl retries).
    int retried = 0;        ///< Relaunches after a failed attempt.
    int reclaimed = 0;      ///< Stale leases taken over at startup.
    int skipped = 0;        ///< Shards already complete at startup.
    int failed = 0;         ///< Shards that exhausted the retry budget.
    int shardsMerged = 0;
    int64_t evalsEver = 0;  ///< Candidate evaluations, all attempts.
    int64_t recomputed = 0; ///< Evaluations beyond one per grid slot.
    int64_t orphanTmpsSwept = 0;
};

/**
 * Supervise `opts.shards` shard children to completion, then merge.
 * Fault sites: "dse.shard.spawn" (alloc = failed launch attempt,
 * cancel = cooperative stop) and "dse.shard.merge" via
 * mergeShardResults. A shard that fails past maxRetries terminates
 * the remaining children and yields a Status at site
 * "dse.shard.retry" (→ exit code 8 in lrdtool).
 */
SupervisorReport superviseDse(const SupervisorOptions &opts);

} // namespace lrd

#endif // LRD_DSE_COORDINATOR_H
