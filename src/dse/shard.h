/**
 * @file
 * Deterministic sharding of the Definition-1 candidate grid across
 * processes, plus the on-disk protocol that makes a supervised
 * multi-process sweep merge bitwise identically to a serial run.
 *
 * Partition: every grid slot (rank, count) hashes through a stable
 * splitmix64-style mix of its candidate key; slot ownership depends
 * only on (rank, count, shardCount) — never on LRD_THREADS, never on
 * enumeration timing — so any two runs agree on who owns what.
 *
 * Per shard, three files live in a shared results directory:
 *
 *   shard-<i>.ckpt   its private resume checkpoint (robust/checkpoint,
 *                    pid-unique .tmp names, .prev rotation)
 *   shard-<i>.lease  heartbeat: writer pid + cumulative evaluation
 *                    count, rewritten at every batch boundary; the
 *                    file mtime doubles as the liveness signal
 *   shard-<i>.result CRC-protected records for every owned slot,
 *                    written once on clean completion
 *
 * The merge reads shard result files in fixed shard order, validates
 * exactly-once grid coverage and bitwise baseline agreement, lands
 * each record back in its serial grid slot, and runs the same fold
 * (foldCandidateRecords) a serial sweep runs — so the merged result
 * file is byte-identical to `lrdtool dse` output at any thread count.
 */

#ifndef LRD_DSE_SHARD_H
#define LRD_DSE_SHARD_H

#include <cstdint>
#include <string>
#include <vector>

#include "dse/optimizer.h"
#include "util/cache.h"
#include "util/status.h"

namespace lrd {

/** "i/n": this process owns shard `index` of `count`. */
struct ShardSpec
{
    int index = 0;
    int count = 1;
};

/**
 * Parse "--shard=i/n" text. InvalidArgument unless both fields are
 * plain decimal, n >= 1, and 0 <= i < n.
 */
Result<ShardSpec> parseShardSpec(const std::string &text);

/** Stable 64-bit key of a candidate grid slot. */
uint64_t candidateShardKey(int64_t rank, int count);

/** Owning shard of a key, in [0, shardCount). */
int shardOfKey(uint64_t key, int shardCount);

/** @name Per-shard file layout inside a results directory
 *  @{
 */
std::string shardCheckpointPath(const std::string &dir, int index);
std::string shardLeasePath(const std::string &dir, int index);
std::string shardResultPath(const std::string &dir, int index);
/** @} */

/**
 * Shard heartbeat: who holds the shard and how many candidate
 * evaluations all attempts of it have performed so far. evalsEver
 * survives a crashed attempt (the relaunch reads it back), so the
 * merge can report work evaluated more than once.
 */
struct ShardLease
{
    int64_t pid = 0;
    int64_t evalsEver = 0;
};

/** Atomically (re)write the lease; the rename refreshes the mtime. */
Status writeShardLease(const std::string &path, const ShardLease &lease);

/** Read a lease; NotFound when absent, DataLoss when corrupt. */
Result<ShardLease> readShardLease(const std::string &path);

/** Seconds since the lease file's last heartbeat; -1 when missing. */
double shardLeaseAgeSeconds(const std::string &path);

/** @name Candidate-record serialization
 * Shared by the sweep checkpoint, shard result files, and the merged
 * result file. Metric doubles round-trip as raw f64 bits, so records
 * written by one process and folded by another stay bitwise intact.
 *  @{
 */
void putCandidateRecord(ByteWriter &w, const CandidateRecord &rec);
CandidateRecord getCandidateRecord(ByteReader &r);
/** @} */

/** Clean-completion output of one shard: every owned slot's record. */
struct ShardResultFile
{
    ShardSpec shard;
    uint64_t gridSize = 0;     ///< Full grid, for coverage checks.
    int64_t evalsEver = 0;     ///< Cumulative across attempts.
    double baselineAccuracy = 0;
    double baselineEdp = 0;
    std::vector<CandidateRecord> records; ///< gridIndex ascending.
};

/** Write a shard result file (atomic, CRC-protected). */
Status writeShardResultFile(const std::string &path,
                            const ShardResultFile &file);

/** Read and validate one shard result file. */
Result<ShardResultFile> readShardResultFile(const std::string &path);

/**
 * Serialize a completed search result to `path` (atomic,
 * CRC-protected). Serial sweeps and shard merges both emit their
 * output through this writer, so byte-comparing the two files is the
 * determinism check.
 */
Status writeDseResultFile(const std::string &path,
                          const OptimizerResult &result);

/** Merge outcome plus its work accounting. */
struct MergeReport
{
    OptimizerResult result;
    int shardsMerged = 0;
    int64_t evalsEver = 0;   ///< Sum over shard files.
    /** Evaluations beyond one per grid slot: work a crashed attempt
     *  checkpointed its lease for but lost, redone by the retry.
     *  Granularity is one checkpoint interval per crash. */
    int64_t recomputed = 0;
};

/**
 * Fold shard result files 0..shardCount-1 in `dir` into the
 * serial-identical result: fixed shard-order read, exactly-once grid
 * coverage validation (DataLoss on a hole or duplicate), bitwise
 * baseline-agreement check, then foldCandidateRecords over the
 * records in grid-enumeration order. Fault site "dse.shard.merge"
 * (alloc, cancel). The failure budget is enforced per shard during
 * its own sweep, not re-enforced here — enforcement only aborts, it
 * never alters the folded bytes.
 */
Result<MergeReport> mergeShardResults(const std::string &dir,
                                      int shardCount,
                                      double accuracyDropTolerance);

} // namespace lrd

#endif // LRD_DSE_SHARD_H
