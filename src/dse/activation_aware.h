/**
 * @file
 * Activation-aware decomposition (an ASVD-style extension beyond the
 * paper): before truncating a weight, scale its input features by
 * their observed activation magnitude on a calibration set, so the
 * rank-1 subspace preserves the directions that actually carry signal
 * at inference time. The scales fold back into U2, so the deployed
 * factor form is unchanged.
 */

#ifndef LRD_DSE_ACTIVATION_AWARE_H
#define LRD_DSE_ACTIVATION_AWARE_H

#include <map>

#include "model/decomp_config.h"

namespace lrd {

/** Per-(layer, kind) input-feature scales. */
using ActivationScales =
    std::map<std::pair<int, int>, std::vector<float>>;

/**
 * Run the calibration documents through the dense model and collect
 * the root-mean-square activation of every input feature of every
 * tensor selected by gamma.
 */
ActivationScales calibrateActivationScales(
    TransformerModel &model, const DecompConfig &gamma,
    const std::vector<TokenSeq> &calibrationDocs);

/**
 * Apply gamma with activation-aware factorization: calibrate on the
 * given documents, then factorize each selected tensor with its
 * scales. Returns the first factorization failure; the model may be
 * partially factorized in that case.
 */
Status applyActivationAware(TransformerModel &model,
                            const DecompConfig &gamma,
                            const std::vector<TokenSeq> &calibrationDocs);

} // namespace lrd

#endif // LRD_DSE_ACTIVATION_AWARE_H
