#include "ops.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace lrd {

namespace {

void
checkSameShape(const Tensor &a, const Tensor &b, const char *what)
{
    require(a.shape() == b.shape(),
            strCat(what, ": shape mismatch ", shapeToString(a.shape()),
                   " vs ", shapeToString(b.shape())));
}

void
checkMatrix(const Tensor &a, const char *what)
{
    require(a.rank() == 2,
            strCat(what, ": expected rank-2 tensor, got ",
                   shapeToString(a.shape())));
}

} // namespace

Tensor
add(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "add");
    Tensor c = a;
    float *cd = c.data();
    const float *bd = b.data();
    for (int64_t i = 0; i < c.size(); ++i)
        cd[i] += bd[i];
    return c;
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "sub");
    Tensor c = a;
    float *cd = c.data();
    const float *bd = b.data();
    for (int64_t i = 0; i < c.size(); ++i)
        cd[i] -= bd[i];
    return c;
}

Tensor
hadamard(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "hadamard");
    Tensor c = a;
    float *cd = c.data();
    const float *bd = b.data();
    for (int64_t i = 0; i < c.size(); ++i)
        cd[i] *= bd[i];
    return c;
}

Tensor
scale(const Tensor &a, float s)
{
    Tensor c = a;
    for (float *p = c.data(), *e = p + c.size(); p != e; ++p)
        *p *= s;
    return c;
}

void
axpy(Tensor &a, float s, const Tensor &b)
{
    checkSameShape(a, b, "axpy");
    float *ad = a.data();
    const float *bd = b.data();
    for (int64_t i = 0; i < a.size(); ++i)
        ad[i] += s * bd[i];
}

void
gemm(const float *a, const float *b, float *c, int64_t m, int64_t k,
     int64_t n, bool accumulate)
{
    if (!accumulate) {
        for (int64_t i = 0; i < m * n; ++i)
            c[i] = 0.0F;
    }
    // i-k-j loop order: unit-stride access of b and c rows vectorizes.
    for (int64_t i = 0; i < m; ++i) {
        const float *arow = a + i * k;
        float *crow = c + i * n;
        for (int64_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0F)
                continue;
            const float *brow = b + p * n;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
gemmTransB(const float *a, const float *b, float *c, int64_t m, int64_t k,
           int64_t n, bool accumulate)
{
    // c[i][j] = sum_p a[i][p] * b[j][p]; dot products over contiguous rows.
    for (int64_t i = 0; i < m; ++i) {
        const float *arow = a + i * k;
        float *crow = c + i * n;
        for (int64_t j = 0; j < n; ++j) {
            const float *brow = b + j * k;
            float acc = 0.0F;
            for (int64_t p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            crow[j] = accumulate ? crow[j] + acc : acc;
        }
    }
}

void
gemmTransA(const float *a, const float *b, float *c, int64_t m, int64_t k,
           int64_t n, bool accumulate)
{
    // c (k x n) = sum_i a[i][:]^T outer b[i][:].
    if (!accumulate) {
        for (int64_t i = 0; i < k * n; ++i)
            c[i] = 0.0F;
    }
    for (int64_t i = 0; i < m; ++i) {
        const float *arow = a + i * k;
        const float *brow = b + i * n;
        for (int64_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0F)
                continue;
            float *crow = c + p * n;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    checkMatrix(a, "matmul");
    checkMatrix(b, "matmul");
    require(a.dim(1) == b.dim(0),
            strCat("matmul: inner dims differ: ", shapeToString(a.shape()),
                   " x ", shapeToString(b.shape())));
    Tensor c({a.dim(0), b.dim(1)});
    gemm(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
    return c;
}

Tensor
matmulTransB(const Tensor &a, const Tensor &b)
{
    checkMatrix(a, "matmulTransB");
    checkMatrix(b, "matmulTransB");
    require(a.dim(1) == b.dim(1),
            strCat("matmulTransB: inner dims differ: ",
                   shapeToString(a.shape()), " x ",
                   shapeToString(b.shape()), "^T"));
    Tensor c({a.dim(0), b.dim(0)});
    gemmTransB(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(0));
    return c;
}

Tensor
matmulTransA(const Tensor &a, const Tensor &b)
{
    checkMatrix(a, "matmulTransA");
    checkMatrix(b, "matmulTransA");
    require(a.dim(0) == b.dim(0),
            strCat("matmulTransA: inner dims differ: ",
                   shapeToString(a.shape()), "^T x ",
                   shapeToString(b.shape())));
    Tensor c({a.dim(1), b.dim(1)});
    gemmTransA(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
    return c;
}

Tensor
transpose2d(const Tensor &a)
{
    checkMatrix(a, "transpose2d");
    const int64_t m = a.dim(0), n = a.dim(1);
    Tensor t({n, m});
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j)
            t(j, i) = a(i, j);
    return t;
}

Tensor
matvec(const Tensor &a, const Tensor &x)
{
    checkMatrix(a, "matvec");
    require(x.rank() == 1 && x.dim(0) == a.dim(1),
            strCat("matvec: vector shape ", shapeToString(x.shape()),
                   " incompatible with matrix ", shapeToString(a.shape())));
    Tensor y({a.dim(0)});
    const int64_t m = a.dim(0), n = a.dim(1);
    const float *ad = a.data();
    const float *xd = x.data();
    for (int64_t i = 0; i < m; ++i) {
        float acc = 0.0F;
        const float *row = ad + i * n;
        for (int64_t j = 0; j < n; ++j)
            acc += row[j] * xd[j];
        y[i] = acc;
    }
    return y;
}

Tensor
relu(const Tensor &a)
{
    Tensor c = a;
    for (float *p = c.data(), *e = p + c.size(); p != e; ++p)
        *p = *p > 0.0F ? *p : 0.0F;
    return c;
}

Tensor
gelu(const Tensor &a)
{
    Tensor c = a;
    constexpr float kSqrt2OverPi = 0.7978845608028654F;
    for (float *p = c.data(), *e = p + c.size(); p != e; ++p) {
        const float x = *p;
        const float inner = kSqrt2OverPi * (x + 0.044715F * x * x * x);
        *p = 0.5F * x * (1.0F + std::tanh(inner));
    }
    return c;
}

Tensor
silu(const Tensor &a)
{
    Tensor c = a;
    for (float *p = c.data(), *e = p + c.size(); p != e; ++p) {
        const float x = *p;
        *p = x / (1.0F + std::exp(-x));
    }
    return c;
}

Tensor
softmaxLastDim(const Tensor &a)
{
    require(a.rank() >= 1, "softmaxLastDim: rank must be >= 1");
    Tensor c = a;
    const int64_t cols = a.dim(a.rank() - 1);
    const int64_t rows = a.size() / cols;
    for (int64_t r = 0; r < rows; ++r) {
        float *row = c.data() + r * cols;
        float mx = row[0];
        for (int64_t j = 1; j < cols; ++j)
            mx = std::max(mx, row[j]);
        float sum = 0.0F;
        for (int64_t j = 0; j < cols; ++j) {
            row[j] = std::exp(row[j] - mx);
            sum += row[j];
        }
        const float inv = 1.0F / sum;
        for (int64_t j = 0; j < cols; ++j)
            row[j] *= inv;
    }
    return c;
}

Tensor
logSoftmaxLastDim(const Tensor &a)
{
    require(a.rank() >= 1, "logSoftmaxLastDim: rank must be >= 1");
    Tensor c = a;
    const int64_t cols = a.dim(a.rank() - 1);
    const int64_t rows = a.size() / cols;
    for (int64_t r = 0; r < rows; ++r) {
        float *row = c.data() + r * cols;
        float mx = row[0];
        for (int64_t j = 1; j < cols; ++j)
            mx = std::max(mx, row[j]);
        double sum = 0.0;
        for (int64_t j = 0; j < cols; ++j)
            sum += std::exp(static_cast<double>(row[j] - mx));
        const float lse = mx + static_cast<float>(std::log(sum));
        for (int64_t j = 0; j < cols; ++j)
            row[j] -= lse;
    }
    return c;
}

double
relativeError(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "relativeError");
    double num = 0.0, den = 0.0;
    const float *ad = a.data();
    const float *bd = b.data();
    for (int64_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(ad[i]) - bd[i];
        num += d * d;
        den += static_cast<double>(ad[i]) * ad[i];
    }
    if (den == 0.0)
        return num == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
    return std::sqrt(num / den);
}

double
dot(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "dot");
    double s = 0.0;
    const float *ad = a.data();
    const float *bd = b.data();
    for (int64_t i = 0; i < a.size(); ++i)
        s += static_cast<double>(ad[i]) * bd[i];
    return s;
}

} // namespace lrd
