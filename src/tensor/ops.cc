#include "ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "tensor/simd/pack.h"
#include "tensor/simd/simd.h"
#include "util/logging.h"

namespace lrd {

namespace {

/** Cached handles for the GEMM counters (one registry lookup ever).
 *  callsPerLevel attributes calls to the dispatched ISA so `lrdtool
 *  stats` can break kernel time down by level. */
struct GemmCounters
{
    Counter *calls;
    Counter *macs;
    Counter *packedBytesA;
    Counter *packedBytesB;
    Counter *callsPerLevel[4];

    void noteCall(int64_t macCount)
    {
        calls->inc();
        macs->add(macCount);
        callsPerLevel[static_cast<int>(simd::activeLevel())]->inc();
    }
};

GemmCounters &
gemmCounters()
{
    static GemmCounters gc = [] {
        MetricsRegistry &reg = MetricsRegistry::instance();
        GemmCounters c{reg.counter("gemm.calls"),
                       reg.counter("gemm.macs"),
                       reg.counter("gemm.packedBytesA"),
                       reg.counter("gemm.packedBytesB"),
                       {}};
        for (simd::Level l :
             {simd::Level::Scalar, simd::Level::Neon, simd::Level::Avx2,
              simd::Level::Avx512})
            c.callsPerLevel[static_cast<int>(l)] = reg.counter(
                strCat("gemm.calls.", simd::levelName(l)));
        return c;
    }();
    return gc;
}

void
checkSameShape(const Tensor &a, const Tensor &b, const char *what)
{
    require(a.shape() == b.shape(),
            strCat(what, ": shape mismatch ", shapeToString(a.shape()),
                   " vs ", shapeToString(b.shape())));
}

void
checkMatrix(const Tensor &a, const char *what)
{
    require(a.rank() == 2,
            strCat(what, ": expected rank-2 tensor, got ",
                   shapeToString(a.shape())));
}

/*
 * Blocked GEMM with packing, shared by all three transpose variants.
 *
 * The driver follows the classic GotoBLAS/BLIS loop structure: the k
 * dimension is split into KC-deep slabs whose B panel is packed once
 * (by the posting thread), then row panels of A are packed and
 * multiplied by an MR x NR register-tile micro-kernel. Packing and
 * tile geometry live in tensor/simd/pack.h; the inner kernel is the
 * runtime-dispatched entry from tensor/simd/simd.h (scalar always
 * available, AVX2/AVX-512/NEON when the CPU supports them, pinnable
 * with LRD_SIMD).
 *
 * Determinism: every C element is produced by exactly one fixed row
 * chunk, k slabs are visited in a fixed serial order, and the chunk
 * partitioning depends only on the shape — so for a fixed LRD_SIMD
 * level results are bitwise identical at any thread count. There is
 * deliberately NO zero-skip (the old kernels dropped `0 * NaN`
 * contributions); padded pack lanes only ever feed accumulator
 * entries that are discarded.
 */

using simd::kKc;
using simd::kMr;
using simd::kNc;
using simd::kNr;
using simd::kRowChunk;

/**
 * Blocked driver over raw storage: logical A is m x k with A(i, p) =
 * a[p * lda + i] when transA (else a[i * lda + p]), logical B is
 * k x n with B(p, j) = b[j * ldb + p] when transB (else b[p*ldb+j]).
 */
void
blockedGemm(const float *a, int64_t lda, bool transA, const float *b,
            int64_t ldb, bool transB, float *c, int64_t m, int64_t k,
            int64_t n, bool accumulate)
{
    const simd::MicroKernelFn kernel = simd::activeKernels().microKernel;
    const int64_t ncPadMax =
        std::min((n + kNr - 1) / kNr * kNr, kNc);
    std::vector<float> bpack(static_cast<size_t>(kKc * ncPadMax));
    const int64_t rowChunks = (m + kRowChunk - 1) / kRowChunk;

    for (int64_t jc = 0; jc < n; jc += kNc) {
        const int64_t nc = std::min(kNc, n - jc);
        for (int64_t pc = 0; pc < k; pc += kKc) {
            const int64_t kc = std::min(kKc, k - pc);
            // B pack is shared read-only by all row chunks.
            simd::packBPanels(b, ldb, transB, pc, jc, kc, nc, bpack.data());
            gemmCounters().packedBytesB->add(
                (nc + kNr - 1) / kNr * kNr * kc
                * static_cast<int64_t>(sizeof(float)));
            const bool addInto = accumulate || pc > 0;

            parallelFor(0, rowChunks, 1, [&](int64_t c0, int64_t c1) {
                thread_local std::vector<float> apack;
                // lrd-lint: allow(hot-path-alloc) thread_local scratch: sized on each thread's first chunk, reused after
                apack.resize(static_cast<size_t>(kRowChunk * kc));
                for (int64_t rc = c0; rc < c1; ++rc) {
                    const int64_t ic = rc * kRowChunk;
                    const int64_t mc = std::min(kRowChunk, m - ic);
                    simd::packAPanels(a, lda, transA, ic, pc, mc, kc,
                                      apack.data());
                    gemmCounters().packedBytesA->add(
                        (mc + kMr - 1) / kMr * kMr * kc
                        * static_cast<int64_t>(sizeof(float)));
                    for (int64_t jr = 0; jr < nc; jr += kNr) {
                        const float *bp =
                            bpack.data() + (jr / kNr) * kNr * kc;
                        const int64_t nr = std::min(kNr, nc - jr);
                        for (int64_t ir = 0; ir < mc; ir += kMr) {
                            const float *ap =
                                apack.data() + (ir / kMr) * kMr * kc;
                            kernel(ap, bp, kc,
                                   c + (ic + ir) * n + jc + jr, n,
                                   std::min(kMr, mc - ir), nr,
                                   addInto);
                        }
                    }
                }
            });
        }
    }
}

/** Whether the packed blocked path pays for itself for this shape. */
bool
useBlockedGemm(int64_t m, int64_t k, int64_t n)
{
    return m >= 2 * kMr && n >= kNr / 2 && k >= 8;
}

/**
 * Dot product with 16 striped lane accumulators reduced in a fixed
 * tree: vectorizes without -ffast-math and sums in a k-only order.
 */
float
laneDot(const float *x, const float *y, int64_t k)
{
    float lane[16] = {};
    int64_t p = 0;
    for (; p + 16 <= k; p += 16)
        for (int64_t l = 0; l < 16; ++l)
            lane[l] += x[p + l] * y[p + l];
    for (int64_t l = 0; p + l < k; ++l)
        lane[l] += x[p + l] * y[p + l];
    for (int64_t l = 0; l < 8; ++l)
        lane[l] += lane[l + 8];
    for (int64_t l = 0; l < 4; ++l)
        lane[l] += lane[l + 4];
    return ((lane[0] + lane[2]) + (lane[1] + lane[3]));
}

} // namespace

Tensor
add(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "add");
    Tensor c = a;
    float *cd = c.data();
    const float *bd = b.data();
    for (int64_t i = 0; i < c.size(); ++i)
        cd[i] += bd[i];
    return c;
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "sub");
    Tensor c = a;
    float *cd = c.data();
    const float *bd = b.data();
    for (int64_t i = 0; i < c.size(); ++i)
        cd[i] -= bd[i];
    return c;
}

Tensor
hadamard(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "hadamard");
    Tensor c = a;
    float *cd = c.data();
    const float *bd = b.data();
    for (int64_t i = 0; i < c.size(); ++i)
        cd[i] *= bd[i];
    return c;
}

Tensor
scale(const Tensor &a, float s)
{
    Tensor c = a;
    for (float *p = c.data(), *e = p + c.size(); p != e; ++p)
        *p *= s;
    return c;
}

void
axpy(Tensor &a, float s, const Tensor &b)
{
    checkSameShape(a, b, "axpy");
    float *ad = a.data();
    const float *bd = b.data();
    for (int64_t i = 0; i < a.size(); ++i)
        ad[i] += s * bd[i];
}

void
gemm(const float *a, const float *b, float *c, int64_t m, int64_t k,
     int64_t n, bool accumulate)
{
    LRD_TRACE_SPAN("gemm");
    gemmCounters().noteCall(m * k * n);
    if (useBlockedGemm(m, k, n)) {
        blockedGemm(a, k, false, b, n, false, c, m, k, n, accumulate);
        return;
    }
    // Skinny fallback: i-k-j loop order (unit-stride b and c rows),
    // column chunks so even single-row products parallelize.
    parallelFor(0, n, 512, [&](int64_t jlo, int64_t jhi) {
        for (int64_t i = 0; i < m; ++i) {
            float *crow = c + i * n;
            if (!accumulate) {
                for (int64_t j = jlo; j < jhi; ++j)
                    crow[j] = 0.0F;
            }
            const float *arow = a + i * k;
            for (int64_t p = 0; p < k; ++p) {
                const float av = arow[p];
                const float *brow = b + p * n;
                for (int64_t j = jlo; j < jhi; ++j)
                    crow[j] += av * brow[j];
            }
        }
    });
}

void
gemmTransB(const float *a, const float *b, float *c, int64_t m, int64_t k,
           int64_t n, bool accumulate)
{
    LRD_TRACE_SPAN("gemmTransB");
    gemmCounters().noteCall(m * k * n);
    if (useBlockedGemm(m, k, n)) {
        blockedGemm(a, k, false, b, k, true, c, m, k, n, accumulate);
        return;
    }
    // Skinny fallback: lane-accumulator dot products over the
    // contiguous rows of a and b, parallel over output columns.
    parallelFor(0, n, 128, [&](int64_t jlo, int64_t jhi) {
        for (int64_t i = 0; i < m; ++i) {
            const float *arow = a + i * k;
            float *crow = c + i * n;
            for (int64_t j = jlo; j < jhi; ++j) {
                const float acc = laneDot(arow, b + j * k, k);
                crow[j] = accumulate ? crow[j] + acc : acc;
            }
        }
    });
}

void
gemmTransA(const float *a, const float *b, float *c, int64_t m, int64_t k,
           int64_t n, bool accumulate)
{
    LRD_TRACE_SPAN("gemmTransA");
    gemmCounters().noteCall(m * k * n);
    // c (k x n) = sum_i a[i][:]^T outer b[i][:]: logical A is the
    // k x m transposed view of the stored (m x k) a.
    if (useBlockedGemm(k, m, n)) {
        blockedGemm(a, k, true, b, n, false, c, k, m, n, accumulate);
        return;
    }
    // Skinny fallback: parallel over the rows of c, so every output
    // element is owned by exactly one chunk.
    parallelFor(0, k, 64, [&](int64_t plo, int64_t phi) {
        if (!accumulate) {
            for (int64_t p = plo; p < phi; ++p)
                for (int64_t j = 0; j < n; ++j)
                    c[p * n + j] = 0.0F;
        }
        for (int64_t i = 0; i < m; ++i) {
            const float *arow = a + i * k;
            const float *brow = b + i * n;
            for (int64_t p = plo; p < phi; ++p) {
                const float av = arow[p];
                float *crow = c + p * n;
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    });
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    checkMatrix(a, "matmul");
    checkMatrix(b, "matmul");
    require(a.dim(1) == b.dim(0),
            strCat("matmul: inner dims differ: ", shapeToString(a.shape()),
                   " x ", shapeToString(b.shape())));
    Tensor c({a.dim(0), b.dim(1)});
    gemm(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
    return c;
}

Tensor
matmulTransB(const Tensor &a, const Tensor &b)
{
    checkMatrix(a, "matmulTransB");
    checkMatrix(b, "matmulTransB");
    require(a.dim(1) == b.dim(1),
            strCat("matmulTransB: inner dims differ: ",
                   shapeToString(a.shape()), " x ",
                   shapeToString(b.shape()), "^T"));
    Tensor c({a.dim(0), b.dim(0)});
    gemmTransB(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(0));
    return c;
}

Tensor
matmulTransA(const Tensor &a, const Tensor &b)
{
    checkMatrix(a, "matmulTransA");
    checkMatrix(b, "matmulTransA");
    require(a.dim(0) == b.dim(0),
            strCat("matmulTransA: inner dims differ: ",
                   shapeToString(a.shape()), "^T x ",
                   shapeToString(b.shape())));
    Tensor c({a.dim(1), b.dim(1)});
    gemmTransA(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
    return c;
}

Tensor
transpose2d(const Tensor &a)
{
    checkMatrix(a, "transpose2d");
    const int64_t m = a.dim(0), n = a.dim(1);
    Tensor t({n, m});
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j)
            t(j, i) = a(i, j);
    return t;
}

Tensor
matvec(const Tensor &a, const Tensor &x)
{
    checkMatrix(a, "matvec");
    require(x.rank() == 1 && x.dim(0) == a.dim(1),
            strCat("matvec: vector shape ", shapeToString(x.shape()),
                   " incompatible with matrix ", shapeToString(a.shape())));
    Tensor y({a.dim(0)});
    const int64_t m = a.dim(0), n = a.dim(1);
    const float *ad = a.data();
    const float *xd = x.data();
    float *yd = y.data();
    parallelFor(0, m, 64, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            yd[i] = laneDot(ad + i * n, xd, n);
    });
    return y;
}

Tensor
relu(const Tensor &a)
{
    Tensor c = a;
    for (float *p = c.data(), *e = p + c.size(); p != e; ++p)
        *p = *p > 0.0F ? *p : 0.0F;
    return c;
}

Tensor
gelu(const Tensor &a)
{
    Tensor c = a;
    constexpr float kSqrt2OverPi = 0.7978845608028654F;
    for (float *p = c.data(), *e = p + c.size(); p != e; ++p) {
        const float x = *p;
        const float inner = kSqrt2OverPi * (x + 0.044715F * x * x * x);
        *p = 0.5F * x * (1.0F + std::tanh(inner));
    }
    return c;
}

Tensor
silu(const Tensor &a)
{
    Tensor c = a;
    for (float *p = c.data(), *e = p + c.size(); p != e; ++p) {
        const float x = *p;
        *p = x / (1.0F + std::exp(-x));
    }
    return c;
}

Tensor
softmaxLastDim(const Tensor &a)
{
    require(a.rank() >= 1, "softmaxLastDim: rank must be >= 1");
    Tensor c = a;
    const int64_t cols = a.dim(a.rank() - 1);
    const int64_t rows = a.size() / cols;
    for (int64_t r = 0; r < rows; ++r) {
        float *row = c.data() + r * cols;
        float mx = row[0];
        for (int64_t j = 1; j < cols; ++j)
            mx = std::max(mx, row[j]);
        float sum = 0.0F;
        for (int64_t j = 0; j < cols; ++j) {
            row[j] = std::exp(row[j] - mx);
            sum += row[j];
        }
        const float inv = 1.0F / sum;
        for (int64_t j = 0; j < cols; ++j)
            row[j] *= inv;
    }
    return c;
}

Tensor
logSoftmaxLastDim(const Tensor &a)
{
    require(a.rank() >= 1, "logSoftmaxLastDim: rank must be >= 1");
    Tensor c = a;
    const int64_t cols = a.dim(a.rank() - 1);
    const int64_t rows = a.size() / cols;
    for (int64_t r = 0; r < rows; ++r) {
        float *row = c.data() + r * cols;
        float mx = row[0];
        for (int64_t j = 1; j < cols; ++j)
            mx = std::max(mx, row[j]);
        double sum = 0.0;
        for (int64_t j = 0; j < cols; ++j)
            sum += std::exp(static_cast<double>(row[j] - mx));
        const float lse = mx + static_cast<float>(std::log(sum));
        for (int64_t j = 0; j < cols; ++j)
            row[j] -= lse;
    }
    return c;
}

double
relativeError(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "relativeError");
    double num = 0.0, den = 0.0;
    const float *ad = a.data();
    const float *bd = b.data();
    for (int64_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(ad[i]) - bd[i];
        num += d * d;
        den += static_cast<double>(ad[i]) * ad[i];
    }
    if (den == 0.0)
        return num == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
    return std::sqrt(num / den);
}

double
dot(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "dot");
    double s = 0.0;
    const float *ad = a.data();
    const float *bd = b.data();
    for (int64_t i = 0; i < a.size(); ++i)
        s += static_cast<double>(ad[i]) * bd[i];
    return s;
}

} // namespace lrd
