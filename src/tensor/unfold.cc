#include "unfold.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace lrd {

namespace {

/**
 * Column strides for the Kolda-Bader unfolding: column index of a
 * multi-index is sum over modes m != mode of i_m * stride_m, where
 * lower modes vary fastest.
 */
std::vector<int64_t>
columnStrides(const Shape &shape, int64_t mode)
{
    std::vector<int64_t> strides(shape.size(), 0);
    int64_t acc = 1;
    for (size_t m = 0; m < shape.size(); ++m) {
        if (static_cast<int64_t>(m) == mode)
            continue;
        strides[m] = acc;
        acc *= shape[m];
    }
    return strides;
}

} // namespace

Tensor
unfold(const Tensor &t, int64_t mode)
{
    require(t.rank() >= 1, "unfold: tensor must have rank >= 1");
    require(mode >= 0 && mode < t.rank(),
            strCat("unfold: mode ", mode, " out of range for rank ",
                   t.rank()));
    const Shape &shape = t.shape();
    const int64_t rows = shape[static_cast<size_t>(mode)];
    const int64_t cols = t.size() / rows;
    Tensor out({rows, cols});

    const auto cstrides = columnStrides(shape, mode);
    std::vector<int64_t> idx(shape.size(), 0);
    const float *src = t.data();
    float *dst = out.data();
    for (int64_t flat = 0; flat < t.size(); ++flat) {
        int64_t col = 0;
        for (size_t m = 0; m < idx.size(); ++m)
            col += idx[m] * cstrides[m];
        dst[idx[static_cast<size_t>(mode)] * cols + col] = src[flat];
        // Advance row-major multi-index (last mode fastest).
        for (int64_t m = t.rank() - 1; m >= 0; --m) {
            if (++idx[static_cast<size_t>(m)] < shape[static_cast<size_t>(m)])
                break;
            idx[static_cast<size_t>(m)] = 0;
        }
    }
    return out;
}

Tensor
fold(const Tensor &m, int64_t mode, const Shape &fullShape)
{
    require(m.rank() == 2, "fold: input must be a matrix");
    require(mode >= 0 && mode < static_cast<int64_t>(fullShape.size()),
            strCat("fold: mode ", mode, " out of range for shape ",
                   shapeToString(fullShape)));
    require(fullShape[static_cast<size_t>(mode)] == m.dim(0),
            strCat("fold: leading extent ", m.dim(0),
                   " != target mode extent ",
                   fullShape[static_cast<size_t>(mode)]));
    require(numElements(fullShape) == m.size(),
            strCat("fold: element count mismatch for ",
                   shapeToString(fullShape)));

    Tensor out(fullShape);
    const auto cstrides = columnStrides(fullShape, mode);
    std::vector<int64_t> idx(fullShape.size(), 0);
    const float *src = m.data();
    float *dst = out.data();
    const int64_t cols = m.dim(1);
    for (int64_t flat = 0; flat < out.size(); ++flat) {
        int64_t col = 0;
        for (size_t k = 0; k < idx.size(); ++k)
            col += idx[k] * cstrides[k];
        dst[flat] = src[idx[static_cast<size_t>(mode)] * cols + col];
        for (int64_t k = static_cast<int64_t>(fullShape.size()) - 1; k >= 0;
             --k) {
            if (++idx[static_cast<size_t>(k)]
                < fullShape[static_cast<size_t>(k)])
                break;
            idx[static_cast<size_t>(k)] = 0;
        }
    }
    return out;
}

Tensor
modeProduct(const Tensor &t, const Tensor &m, int64_t mode)
{
    require(m.rank() == 2, "modeProduct: factor must be a matrix");
    require(mode >= 0 && mode < t.rank(),
            strCat("modeProduct: mode ", mode, " out of range for rank ",
                   t.rank()));
    require(m.dim(1) == t.dim(mode),
            strCat("modeProduct: factor ", shapeToString(m.shape()),
                   " incompatible with mode ", mode, " of ",
                   shapeToString(t.shape())));
    // Y_(mode) = M * T_(mode), then refold with the new extent.
    Tensor unfolded = unfold(t, mode);
    Tensor product = matmul(m, unfolded);
    Shape outShape = t.shape();
    outShape[static_cast<size_t>(mode)] = m.dim(0);
    return fold(product, mode, outShape);
}

} // namespace lrd
