/**
 * @file
 * Tensor matricization (mode-n unfolding) and mode-n products — the
 * multilinear-algebra primitives used by Tucker decomposition
 * (Algorithm 1 of the paper).
 *
 * Conventions follow Kolda & Bader, "Tensor Decompositions and
 * Applications": the mode-n unfolding T_(n) arranges mode-n fibers as
 * columns, producing a (I_n x prod_{m != n} I_m) matrix, and the
 * mode-n product (T x_n M) with M of shape (J x I_n) replaces extent
 * I_n by J.
 */

#ifndef LRD_TENSOR_UNFOLD_H
#define LRD_TENSOR_UNFOLD_H

#include "tensor/tensor.h"

namespace lrd {

/**
 * Mode-n unfolding (matricization) of an arbitrary-rank tensor.
 *
 * @param t    Input tensor of rank >= 1.
 * @param mode Mode index in [0, rank).
 * @return Matrix of shape (I_mode, numel / I_mode); column index runs
 *         over the remaining modes with the *lowest* mode fastest
 *         (Kolda-Bader ordering).
 */
Tensor unfold(const Tensor &t, int64_t mode);

/**
 * Inverse of unfold(): refold a matricized tensor back to fullShape.
 *
 * @param m         Matrix produced by unfold(t, mode) (possibly with a
 *                  modified leading extent).
 * @param mode      The unfolding mode.
 * @param fullShape Target shape; fullShape[mode] must equal m.dim(0).
 */
Tensor fold(const Tensor &m, int64_t mode, const Shape &fullShape);

/**
 * Mode-n product T x_mode M.
 *
 * @param t    Input tensor.
 * @param m    Matrix of shape (J, I_mode).
 * @param mode Contracted mode.
 * @return Tensor whose mode extent becomes J.
 */
Tensor modeProduct(const Tensor &t, const Tensor &m, int64_t mode);

} // namespace lrd

#endif // LRD_TENSOR_UNFOLD_H
