#include "tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"
#include "util/memprobe.h"

namespace lrd {

std::string
shapeToString(const Shape &shape)
{
    std::ostringstream oss;
    oss << "[";
    for (size_t i = 0; i < shape.size(); ++i) {
        if (i)
            oss << ", ";
        oss << shape[i];
    }
    oss << "]";
    return oss.str();
}

int64_t
numElements(const Shape &shape)
{
    int64_t n = 1;
    for (int64_t d : shape) {
        if (d < 0)
            fatal("numElements: negative extent in " + shapeToString(shape));
        n *= d;
    }
    return n;
}

void
Tensor::accountAlloc()
{
    accountedBytes_ =
        static_cast<int64_t>(data_.size() * sizeof(float));
    tensorArenaRecordAlloc(accountedBytes_);
}

Tensor::Tensor() : shape_(), data_(1, 0.0F)
{
    accountAlloc();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(numElements(shape_)), 0.0F)
{
    accountAlloc();
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    require(static_cast<int64_t>(data_.size()) == numElements(shape_),
            strCat("Tensor: data size ", data_.size(), " != shape ",
                   shapeToString(shape_)));
    accountAlloc();
}

Tensor::~Tensor()
{
    tensorArenaRecordFree(accountedBytes_);
}

Tensor::Tensor(const Tensor &other)
    : shape_(other.shape_), data_(other.data_)
{
    accountAlloc();
}

Tensor::Tensor(Tensor &&other) noexcept
    : shape_(std::move(other.shape_)), data_(std::move(other.data_)),
      accountedBytes_(other.accountedBytes_)
{
    other.accountedBytes_ = 0;
}

Tensor &
Tensor::operator=(const Tensor &other)
{
    if (this == &other)
        return *this;
    tensorArenaRecordFree(accountedBytes_);
    shape_ = other.shape_;
    data_ = other.data_;
    accountAlloc();
    return *this;
}

Tensor &
Tensor::operator=(Tensor &&other) noexcept
{
    if (this == &other)
        return *this;
    tensorArenaRecordFree(accountedBytes_);
    shape_ = std::move(other.shape_);
    data_ = std::move(other.data_);
    accountedBytes_ = other.accountedBytes_;
    other.accountedBytes_ = 0;
    return *this;
}

Tensor
Tensor::zeros(Shape shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::ones(Shape shape)
{
    return full(std::move(shape), 1.0F);
}

Tensor
Tensor::full(Shape shape, float value)
{
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor
Tensor::eye(int64_t n)
{
    require(n > 0, "Tensor::eye: n must be positive");
    Tensor t({n, n});
    for (int64_t i = 0; i < n; ++i)
        t(i, i) = 1.0F;
    return t;
}

Tensor
Tensor::randn(Shape shape, Rng &rng, float stddev)
{
    Tensor t(std::move(shape));
    for (auto &v : t.data_)
        v = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

Tensor
Tensor::randu(Shape shape, Rng &rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    for (auto &v : t.data_)
        v = rng.uniform(lo, hi);
    return t;
}

int64_t
Tensor::dim(int64_t i) const
{
    require(i >= 0 && i < rank(),
            strCat("Tensor::dim: mode ", i, " out of range for rank ",
                   rank()));
    return shape_[static_cast<size_t>(i)];
}

int64_t
Tensor::offsetOf(const std::vector<int64_t> &index) const
{
    require(static_cast<int64_t>(index.size()) == rank(),
            strCat("Tensor::offsetOf: index rank ", index.size(),
                   " != tensor rank ", rank()));
    int64_t off = 0;
    for (size_t i = 0; i < index.size(); ++i) {
        require(index[i] >= 0 && index[i] < shape_[i],
                strCat("Tensor::offsetOf: index ", index[i],
                       " out of bounds for mode ", i, " extent ",
                       shape_[i]));
        off = off * shape_[i] + index[i];
    }
    return off;
}

float &
Tensor::at(const std::vector<int64_t> &index)
{
    return data_[static_cast<size_t>(offsetOf(index))];
}

float
Tensor::at(const std::vector<int64_t> &index) const
{
    return data_[static_cast<size_t>(offsetOf(index))];
}

float &
Tensor::operator()(int64_t i, int64_t j)
{
    return data_[static_cast<size_t>(i * shape_[1] + j)];
}

float
Tensor::operator()(int64_t i, int64_t j) const
{
    return data_[static_cast<size_t>(i * shape_[1] + j)];
}

Tensor
Tensor::reshaped(Shape shape) const
{
    require(numElements(shape) == size(),
            strCat("Tensor::reshaped: cannot reshape ",
                   shapeToString(shape_), " to ", shapeToString(shape)));
    return Tensor(std::move(shape), data_);
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

bool
Tensor::allFinite() const
{
    for (float v : data_)
        if (!std::isfinite(v))
            return false;
    return true;
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (float v : data_)
        s += v;
    return s;
}

double
Tensor::norm() const
{
    double s = 0.0;
    for (float v : data_)
        s += static_cast<double>(v) * v;
    return std::sqrt(s);
}

float
Tensor::minValue() const
{
    require(!data_.empty(), "Tensor::minValue: empty tensor");
    return *std::min_element(data_.begin(), data_.end());
}

float
Tensor::maxValue() const
{
    require(!data_.empty(), "Tensor::maxValue: empty tensor");
    return *std::max_element(data_.begin(), data_.end());
}

std::string
Tensor::describe() const
{
    return strCat("Tensor", shapeToString(shape_), " (", size(), " elems)");
}

} // namespace lrd
