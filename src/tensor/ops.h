/**
 * @file
 * Elementwise and linear-algebra primitives over Tensor.
 *
 * All binary ops require exactly matching shapes (no broadcasting);
 * the transformer layers handle their own batching explicitly, which
 * keeps these kernels simple and fast.
 */

#ifndef LRD_TENSOR_OPS_H
#define LRD_TENSOR_OPS_H

#include "tensor/tensor.h"

namespace lrd {

/** @name Elementwise operations (shapes must match exactly)
 *  @{
 */
Tensor add(const Tensor &a, const Tensor &b);
Tensor sub(const Tensor &a, const Tensor &b);
Tensor hadamard(const Tensor &a, const Tensor &b);
Tensor scale(const Tensor &a, float s);
/** a += s * b (AXPY); mutates a in place. */
void axpy(Tensor &a, float s, const Tensor &b);
/** @} */

/** @name Matrix operations (rank-2 tensors)
 *  @{
 */
/** C = A (m x k) * B (k x n). */
Tensor matmul(const Tensor &a, const Tensor &b);
/** C = A (m x k) * B^T where B is (n x k). Faster inner loop. */
Tensor matmulTransB(const Tensor &a, const Tensor &b);
/** C = A^T (k x m -> m x k view) * B (k x n). */
Tensor matmulTransA(const Tensor &a, const Tensor &b);
/** Explicit 2D transpose. */
Tensor transpose2d(const Tensor &a);
/** y = A (m x n) * x (n). */
Tensor matvec(const Tensor &a, const Tensor &x);
/** @} */

/** @name Raw-pointer GEMM kernels used by hot paths
 *  C (m x n) = A (m x k) * B (k x n), with accumulate option.
 *
 *  Cache-blocked, packed, and parallelized over fixed row chunks of
 *  the global thread pool; results are bitwise identical at any
 *  LRD_THREADS setting. IEEE special values propagate (no zero-skip).
 *  @{
 */
void gemm(const float *a, const float *b, float *c, int64_t m, int64_t k,
          int64_t n, bool accumulate = false);
/** C (m x n) = A (m x k) * B^T, B stored (n x k). */
void gemmTransB(const float *a, const float *b, float *c, int64_t m,
                int64_t k, int64_t n, bool accumulate = false);
/** C (k x n) = A^T, A stored (m x k), times B (m x n). */
void gemmTransA(const float *a, const float *b, float *c, int64_t m,
                int64_t k, int64_t n, bool accumulate = false);
/** @} */

/** @name Activations
 *  @{
 */
Tensor relu(const Tensor &a);
/** Tanh-approximation GELU as used by BERT. */
Tensor gelu(const Tensor &a);
/** SiLU (x * sigmoid(x)) as used by Llama's SwiGLU MLP. */
Tensor silu(const Tensor &a);
/** @} */

/**
 * Softmax along the last mode, numerically stabilized.
 * Works for any rank >= 1.
 */
Tensor softmaxLastDim(const Tensor &a);

/**
 * Log-softmax along the last mode, numerically stabilized.
 */
Tensor logSoftmaxLastDim(const Tensor &a);

/** Relative Frobenius error ||a - b|| / ||a|| (0 when both zero). */
double relativeError(const Tensor &a, const Tensor &b);

/** Dot product of two equal-shaped tensors. */
double dot(const Tensor &a, const Tensor &b);

} // namespace lrd

#endif // LRD_TENSOR_OPS_H
