/**
 * @file
 * Internal declarations of the per-ISA microkernel implementations.
 * Each kernel TU is compiled with its own -m flags (see
 * src/tensor/CMakeLists.txt) and exposes exactly one function here;
 * on architectures where a level cannot be compiled the TU defines
 * the symbol as nullptr-yielding via the *_available flag instead.
 * Production code never calls these directly — dispatch.cc builds the
 * kernel table from them once per process.
 */

#ifndef LRD_TENSOR_SIMD_KERNELS_H
#define LRD_TENSOR_SIMD_KERNELS_H

#include "tensor/simd/simd.h"

namespace lrd::simd {

/** Portable reference kernel; always available. */
void microKernelScalar(const float *ap, const float *bp, int64_t kc,
                       float *c, int64_t ldc, int64_t mr, int64_t nr,
                       bool addInto);

/** AVX2+FMA kernel, or nullptr when not compiled for x86. */
extern const MicroKernelFn kMicroKernelAvx2;

/** AVX-512F kernel, or nullptr when not compiled for x86. */
extern const MicroKernelFn kMicroKernelAvx512;

/** AArch64 NEON kernel, or nullptr when not compiled for ARM. */
extern const MicroKernelFn kMicroKernelNeon;

} // namespace lrd::simd

#endif // LRD_TENSOR_SIMD_KERNELS_H
