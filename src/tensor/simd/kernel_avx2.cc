/**
 * @file
 * AVX2+FMA microkernel. The 8 x 48 packed tile is processed as six
 * 4 x 16 register sub-tiles (8 ymm accumulators + 2 B lanes + 1
 * broadcast = 11 of 16 ymm registers), each streaming the full kc
 * depth so accumulators never leave the register file; the packed
 * panels they re-read stay L1-resident (A panel 8*384*4 = 12 KiB,
 * B sub-slice 16*384*4 = 24 KiB).
 *
 * This TU is compiled with -mavx2 -mfma on x86 builds only; on other
 * architectures it degrades to a nullptr table entry.
 */

#include "tensor/simd/kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "tensor/simd/pack.h"

namespace lrd::simd {

namespace {

/** One 4 x 16 sub-tile at rows [ib, ib+4) x cols [jb, jb+16). */
inline void
subTile4x16(const float *ap, const float *bp, int64_t kc, float *c,
            int64_t ldc, int64_t ib, int64_t jb, bool addInto)
{
    __m256 acc[4][2];
    for (int r = 0; r < 4; ++r) {
        acc[r][0] = _mm256_setzero_ps();
        acc[r][1] = _mm256_setzero_ps();
    }
    for (int64_t p = 0; p < kc; ++p) {
        const float *arow = ap + p * kMr + ib;
        const float *brow = bp + p * kNr + jb;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        for (int r = 0; r < 4; ++r) {
            const __m256 av = _mm256_set1_ps(arow[r]);
            acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
            acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
        }
    }
    for (int r = 0; r < 4; ++r) {
        float *crow = c + (ib + r) * ldc + jb;
        if (addInto) {
            acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_loadu_ps(crow));
            acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_loadu_ps(crow + 8));
        }
        _mm256_storeu_ps(crow, acc[r][0]);
        _mm256_storeu_ps(crow + 8, acc[r][1]);
    }
}

void
fullTile(const float *ap, const float *bp, int64_t kc, float *c, int64_t ldc,
         bool addInto)
{
    for (int64_t ib = 0; ib < kMr; ib += 4)
        for (int64_t jb = 0; jb < kNr; jb += 16)
            subTile4x16(ap, bp, kc, c, ldc, ib, jb, addInto);
}

void
microKernelAvx2(const float *ap, const float *bp, int64_t kc, float *c,
                int64_t ldc, int64_t mr, int64_t nr, bool addInto)
{
    if (mr == kMr && nr == kNr) {
        fullTile(ap, bp, kc, c, ldc, addInto);
        return;
    }
    // Partial tile: compute the full padded tile into a scratch
    // buffer, then merge only the live mr x nr region.
    float buf[kMr * kNr];
    fullTile(ap, bp, kc, buf, kNr, /*addInto=*/false);
    if (addInto) {
        for (int64_t i = 0; i < mr; ++i)
            for (int64_t j = 0; j < nr; ++j)
                c[i * ldc + j] += buf[i * kNr + j];
    } else {
        for (int64_t i = 0; i < mr; ++i)
            for (int64_t j = 0; j < nr; ++j)
                c[i * ldc + j] = buf[i * kNr + j];
    }
}

} // namespace

const MicroKernelFn kMicroKernelAvx2 = &microKernelAvx2;

} // namespace lrd::simd

#else // !(__AVX2__ && __FMA__)

namespace lrd::simd {
const MicroKernelFn kMicroKernelAvx2 = nullptr;
} // namespace lrd::simd

#endif
