/**
 * @file
 * Portable microkernel: the dispatch table's always-available floor
 * and the reference the SIMD kernels are parity-tested against. The
 * compiler is free to auto-vectorize these loops for the build's
 * -march baseline; what "scalar" pins down is the accumulation
 * structure (one fixed-order k chain per C element), not the
 * instruction encoding.
 */

#include "tensor/simd/kernels.h"
#include "tensor/simd/pack.h"

namespace lrd::simd {

void
microKernelScalar(const float *ap, const float *bp, int64_t kc, float *c,
                  int64_t ldc, int64_t mr, int64_t nr, bool addInto)
{
    float acc[kMr][kNr];
    for (int64_t i = 0; i < kMr; ++i)
        for (int64_t j = 0; j < kNr; ++j)
            acc[i][j] = 0.0F;
    for (int64_t p = 0; p < kc; ++p) {
        const float *arow = ap + p * kMr;
        const float *brow = bp + p * kNr;
        for (int64_t i = 0; i < kMr; ++i) {
            const float av = arow[i];
            for (int64_t j = 0; j < kNr; ++j)
                acc[i][j] += av * brow[j];
        }
    }
    if (addInto) {
        for (int64_t i = 0; i < mr; ++i)
            for (int64_t j = 0; j < nr; ++j)
                c[i * ldc + j] += acc[i][j];
    } else {
        for (int64_t i = 0; i < mr; ++i)
            for (int64_t j = 0; j < nr; ++j)
                c[i * ldc + j] = acc[i][j];
    }
}

} // namespace lrd::simd
