/**
 * @file
 * AVX-512F microkernel. The 8 x 48 packed tile maps exactly onto the
 * 512-bit register file: 8 rows x 3 zmm columns = 24 accumulators,
 * plus 3 B lanes and 1 broadcast, leaving headroom in the 32-register
 * file for the compiler's address arithmetic. Each k step issues 3
 * loads, 8 broadcasts and 24 FMAs, so the loop is FMA-bound on any
 * two-port machine.
 *
 * This TU is compiled with -mavx512f on x86 builds only; elsewhere it
 * degrades to a nullptr table entry.
 */

#include "tensor/simd/kernels.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include "tensor/simd/pack.h"

namespace lrd::simd {

namespace {

void
fullTile(const float *ap, const float *bp, int64_t kc, float *c, int64_t ldc,
         bool addInto)
{
    __m512 acc[8][3];
    for (int r = 0; r < 8; ++r)
        for (int v = 0; v < 3; ++v)
            acc[r][v] = _mm512_setzero_ps();
    for (int64_t p = 0; p < kc; ++p) {
        const float *arow = ap + p * kMr;
        const float *brow = bp + p * kNr;
        const __m512 b0 = _mm512_loadu_ps(brow);
        const __m512 b1 = _mm512_loadu_ps(brow + 16);
        const __m512 b2 = _mm512_loadu_ps(brow + 32);
        for (int r = 0; r < 8; ++r) {
            const __m512 av = _mm512_set1_ps(arow[r]);
            acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
            acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
            acc[r][2] = _mm512_fmadd_ps(av, b2, acc[r][2]);
        }
    }
    for (int r = 0; r < 8; ++r) {
        float *crow = c + r * ldc;
        if (addInto) {
            acc[r][0] = _mm512_add_ps(acc[r][0], _mm512_loadu_ps(crow));
            acc[r][1] = _mm512_add_ps(acc[r][1], _mm512_loadu_ps(crow + 16));
            acc[r][2] = _mm512_add_ps(acc[r][2], _mm512_loadu_ps(crow + 32));
        }
        _mm512_storeu_ps(crow, acc[r][0]);
        _mm512_storeu_ps(crow + 16, acc[r][1]);
        _mm512_storeu_ps(crow + 32, acc[r][2]);
    }
}

void
microKernelAvx512(const float *ap, const float *bp, int64_t kc, float *c,
                  int64_t ldc, int64_t mr, int64_t nr, bool addInto)
{
    if (mr == kMr && nr == kNr) {
        fullTile(ap, bp, kc, c, ldc, addInto);
        return;
    }
    float buf[kMr * kNr];
    fullTile(ap, bp, kc, buf, kNr, /*addInto=*/false);
    if (addInto) {
        for (int64_t i = 0; i < mr; ++i)
            for (int64_t j = 0; j < nr; ++j)
                c[i * ldc + j] += buf[i * kNr + j];
    } else {
        for (int64_t i = 0; i < mr; ++i)
            for (int64_t j = 0; j < nr; ++j)
                c[i * ldc + j] = buf[i * kNr + j];
    }
}

} // namespace

const MicroKernelFn kMicroKernelAvx512 = &microKernelAvx512;

} // namespace lrd::simd

#else // !__AVX512F__

namespace lrd::simd {
const MicroKernelFn kMicroKernelAvx512 = nullptr;
} // namespace lrd::simd

#endif
