#include "tensor/simd/pack.h"

#include <algorithm>

#include "tensor/simd/simd.h"

namespace lrd::simd {

void
packAPanels(const float *a, int64_t lda, bool trans, int64_t i0, int64_t p0,
            int64_t mc, int64_t kc, float *dst)
{
    for (int64_t ir = 0; ir < mc; ir += kMr) {
        const int64_t mr = std::min(kMr, mc - ir);
        if (!trans) {
            for (int64_t p = 0; p < kc; ++p) {
                const float *col = a + (i0 + ir) * lda + (p0 + p);
                for (int64_t i = 0; i < mr; ++i)
                    dst[p * kMr + i] = col[i * lda];
                for (int64_t i = mr; i < kMr; ++i)
                    dst[p * kMr + i] = 0.0F;
            }
        } else {
            // A(i, p) = a[p * lda + i]: each packed column is
            // contiguous in storage.
            for (int64_t p = 0; p < kc; ++p) {
                const float *row = a + (p0 + p) * lda + (i0 + ir);
                for (int64_t i = 0; i < mr; ++i)
                    dst[p * kMr + i] = row[i];
                for (int64_t i = mr; i < kMr; ++i)
                    dst[p * kMr + i] = 0.0F;
            }
        }
        dst += kMr * kc;
    }
}

void
packBPanels(const float *b, int64_t ldb, bool trans, int64_t p0, int64_t j0,
            int64_t kc, int64_t nc, float *dst)
{
    for (int64_t jr = 0; jr < nc; jr += kNr) {
        const int64_t nr = std::min(kNr, nc - jr);
        if (!trans) {
            for (int64_t p = 0; p < kc; ++p) {
                const float *row = b + (p0 + p) * ldb + (j0 + jr);
                for (int64_t j = 0; j < nr; ++j)
                    dst[p * kNr + j] = row[j];
                for (int64_t j = nr; j < kNr; ++j)
                    dst[p * kNr + j] = 0.0F;
            }
        } else {
            // B(p, j) = b[j * ldb + p].
            for (int64_t p = 0; p < kc; ++p) {
                const float *col = b + (j0 + jr) * ldb + (p0 + p);
                for (int64_t j = 0; j < nr; ++j)
                    dst[p * kNr + j] = col[j * ldb];
                for (int64_t j = nr; j < kNr; ++j)
                    dst[p * kNr + j] = 0.0F;
            }
        }
        dst += kNr * kc;
    }
}

PackedMat
packMatrixB(const float *b, int64_t k, int64_t n, bool trans)
{
    PackedMat packed;
    packed.k = k;
    packed.n = n;
    const int64_t nPad = (n + kNr - 1) / kNr * kNr;
    const int64_t numSlabs = (k + kKc - 1) / kKc;
    // lrd-lint: allow(hot-path-alloc) packing allocates once per GEMM call, ahead of the panel loops
    packed.slabOffset.reserve(static_cast<size_t>(numSlabs));
    packed.slabKc.reserve(static_cast<size_t>(numSlabs)); // lrd-lint: allow(hot-path-alloc) see above
    packed.data.resize(static_cast<size_t>(nPad * k)); // lrd-lint: allow(hot-path-alloc) see above
    int64_t offset = 0;
    for (int64_t pc = 0; pc < k; pc += kKc) {
        const int64_t kc = std::min(kKc, k - pc);
        packed.slabOffset.push_back(offset); // lrd-lint: allow(hot-path-alloc) see above
        packed.slabKc.push_back(kc); // lrd-lint: allow(hot-path-alloc) see above
        packBPanels(b, trans ? k : n, trans, pc, 0, kc, n,
                    packed.data.data() + offset);
        offset += nPad * kc;
    }
    return packed;
}

void
gemmPackedB(const float *a, int64_t lda, int64_t mc, const PackedMat &b,
            float *c, int64_t ldc, float *scratch)
{
    const MicroKernelFn kernel = activeKernels().microKernel;
    const int64_t n = b.n;
    for (int64_t s = 0; s < b.numSlabs(); ++s) {
        const int64_t kc = b.slabKc[static_cast<size_t>(s)];
        const int64_t pc = s * kKc;
        const bool addInto = s > 0;
        packAPanels(a, lda, false, 0, pc, mc, kc, scratch);
        const float *bslab = b.slab(s);
        for (int64_t jr = 0; jr < n; jr += kNr) {
            const float *bp = bslab + (jr / kNr) * kNr * kc;
            const int64_t nr = std::min(kNr, n - jr);
            for (int64_t ir = 0; ir < mc; ir += kMr) {
                const float *ap = scratch + (ir / kMr) * kMr * kc;
                kernel(ap, bp, kc, c + ir * ldc + jr, ldc,
                       std::min(kMr, mc - ir), nr, addInto);
            }
        }
    }
}

} // namespace lrd::simd
