/**
 * @file
 * Panel packing for the blocked GEMM driver and prepacked weights.
 *
 * Tile geometry (floats) shared by every microkernel level:
 *
 *   kMr x kNr  register tile   (8 x 48: 24 AVX-512 / 6x 8-wide rows)
 *   kKc        k-slab depth    (A panel stays resident in L2)
 *   kNc        n-slab width    (B pack stays resident in LLC)
 *
 * packAPanels lays an mc x kc block of A out as k-major kMr-wide
 * panels; packBPanels lays a kc x nc block of B out as p-major
 * kNr-wide panels. Both zero-pad partial panels, which keeps the
 * microkernel branch-free; padded lanes only ever feed accumulator
 * entries that are discarded on store.
 *
 * PackedMat is the "pack once, multiply many" form of a whole B
 * operand: every k-slab's panels packed back to back, with per-slab
 * offsets. Serving-style repeated forwards (model/linear.cc fused
 * path) build it once per weight and skip the per-call pack.
 */

#ifndef LRD_TENSOR_SIMD_PACK_H
#define LRD_TENSOR_SIMD_PACK_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lrd::simd {

constexpr int64_t kMr = 8;
constexpr int64_t kNr = 48;
constexpr int64_t kKc = 384;  ///< k-slab depth (A panel stays in L2).
constexpr int64_t kNc = 1920; ///< n-slab width (B pack stays in LLC).
/** Rows per parallel chunk: 4 MR panels keeps ~8 chunks at m = 256. */
constexpr int64_t kRowChunk = 4 * kMr;

/**
 * Pack an mc x kc block of logical A (element (i, p) of an m x k
 * matrix) into k-major kMr panels starting at (i0, p0).
 * @param trans When false A is stored row-major (lda = row stride);
 *              when true the storage is transposed: A(i, p) =
 *              a[p * lda + i] (gemmTransA's view).
 */
void packAPanels(const float *a, int64_t lda, bool trans, int64_t i0,
                 int64_t p0, int64_t mc, int64_t kc, float *dst);

/**
 * Pack a kc x nc block of logical B (element (p, j) of a k x n
 * matrix) into p-major kNr panels starting at (p0, j0).
 * @param trans When false B is stored row-major (ldb = row stride);
 *              when true the storage is transposed: B(p, j) =
 *              b[j * ldb + p] (gemmTransB's view).
 */
void packBPanels(const float *b, int64_t ldb, bool trans, int64_t p0,
                 int64_t j0, int64_t kc, int64_t nc, float *dst);

/**
 * A whole k x n B operand packed once into microkernel panel form:
 * for each k-slab s (kKc deep), ceil(n / kNr) p-major panels.
 */
struct PackedMat
{
    int64_t k = 0;
    int64_t n = 0;
    /** Start of slab s in data; slabKc[s] is its depth. */
    std::vector<int64_t> slabOffset;
    std::vector<int64_t> slabKc;
    std::vector<float> data;

    bool empty() const { return data.empty(); }
    int64_t numSlabs() const
    {
        return static_cast<int64_t>(slabOffset.size());
    }
    /** Packed panels of slab s (panel j covers columns [j*kNr, ...)). */
    const float *slab(int64_t s) const
    {
        return data.data() + slabOffset[static_cast<size_t>(s)];
    }
};

/**
 * Pack a full k x n logical B once (see PackedMat). With trans the
 * storage is transposed as in packBPanels — packMatrixB(w, k, n,
 * true) packs W^T for y = x W^T chains without materializing W^T.
 */
PackedMat packMatrixB(const float *b, int64_t k, int64_t n, bool trans);

/**
 * C (mc x n, row stride ldc) = A (mc x k, row-major, row stride lda)
 * times a prepacked B — the "multiply many" half of PackedMat. Runs
 * serially on the calling thread (callers parallelize over row
 * panels); mc is expected to be <= kRowChunk.
 * @param scratch Caller-provided pack buffer of at least
 *                kRowChunk * kKc floats, reused across calls.
 */
void gemmPackedB(const float *a, int64_t lda, int64_t mc,
                 const PackedMat &b, float *c, int64_t ldc,
                 float *scratch);

} // namespace lrd::simd

#endif // LRD_TENSOR_SIMD_PACK_H
