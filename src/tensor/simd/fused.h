/**
 * @file
 * Fused factorized-linear forward: y = ((x U2^T) core^T) U1^T (+ b)
 * chained through register-blocked row panels.
 *
 * The paper's decomposed fully-connected layer is three chained
 * GEMMs. The unfused path materializes both (n x pr) intermediates in
 * full; this driver instead walks x in kRowChunk-row panels and keeps
 * each panel's t1/t2 intermediates in thread-local scratch that never
 * leaves the cache, multiplying against factor weights that were
 * packed ONCE into microkernel panel form (PackedMat). Serving-style
 * repeated forwards therefore skip both the intermediate allocation
 * and the per-call B pack.
 *
 * Determinism: each output row is produced by exactly one fixed row
 * panel and every element accumulates over k in slab-ascending order,
 * so results are bitwise identical at any LRD_THREADS for a fixed
 * LRD_SIMD level — the same contract as the unfused kernels.
 */

#ifndef LRD_TENSOR_SIMD_FUSED_H
#define LRD_TENSOR_SIMD_FUSED_H

#include <cstdint>

#include "tensor/simd/pack.h"

namespace lrd::simd {

/**
 * y (m x out) = ((x (m x in) * u2t) * coret) * u1t + bias.
 *
 * @param u2t   U2^T packed as (in x pr):   packMatrixB(U2, in, pr, true).
 * @param coret core^T packed as (pr x pr): packMatrixB(core, pr, pr, true).
 * @param u1t   U1^T packed as (pr x out):  packMatrixB(U1, pr, out, true).
 * @param bias  Optional (out) bias row, nullptr for none.
 */
void fusedFactorizedForward(const float *x, int64_t m, int64_t in,
                            int64_t pr, int64_t out, const PackedMat &u2t,
                            const PackedMat &coret, const PackedMat &u1t,
                            const float *bias, float *y);

} // namespace lrd::simd

#endif // LRD_TENSOR_SIMD_FUSED_H
