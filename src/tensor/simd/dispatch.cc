/**
 * @file
 * Kernel-table resolution: cpuid feature detection, the LRD_SIMD
 * override, and the process-wide active level.
 */

#include "tensor/simd/simd.h"

#include <atomic>
#include <cstdlib>

#include "obs/metrics.h"
#include "tensor/simd/kernels.h"
#include "util/logging.h"

namespace lrd::simd {

namespace {

/** Active level as an int; -1 until first resolution. */
std::atomic<int> gActiveLevel{-1};

constexpr int kNumLevels = 4;

bool
cpuSupports(Level level)
{
    switch (level) {
    case Level::Scalar:
        return true;
    case Level::Neon:
        // NEON is architecturally guaranteed where the kernel compiles.
        return kMicroKernelNeon != nullptr;
    case Level::Avx2:
#if defined(__x86_64__) || defined(__i386__)
        return kMicroKernelAvx2 != nullptr &&
               __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma");
#else
        return false;
#endif
    case Level::Avx512:
#if defined(__x86_64__) || defined(__i386__)
        return kMicroKernelAvx512 != nullptr &&
               __builtin_cpu_supports("avx512f");
#else
        return false;
#endif
    }
    return false;
}

/** Dispatch table rows, indexed by Level. Unsupported rows keep a
 *  nullptr kernel and can never become active. */
const KernelTable &
tableFor(Level level)
{
    static const KernelTable tables[kNumLevels] = {
        {Level::Scalar, "scalar", &microKernelScalar},
        {Level::Neon, "neon", kMicroKernelNeon},
        {Level::Avx2, "avx2", kMicroKernelAvx2},
        {Level::Avx512, "avx512", kMicroKernelAvx512},
    };
    return tables[static_cast<int>(level)];
}

/** Highest supported level, honoring the LRD_SIMD pin. */
Level
resolveInitialLevel()
{
    const char *env = std::getenv("LRD_SIMD");
    if (env != nullptr && *env != '\0') {
        Level pinned;
        if (!parseLevel(env, &pinned))
            fatal(strCat("LRD_SIMD: unknown level '", env,
                         "' (expected scalar, neon, avx2 or avx512)"));
        if (!cpuSupports(pinned))
            fatal(strCat("LRD_SIMD=", env,
                         ": this CPU/build cannot run that level"));
        return pinned;
    }
    for (Level l : {Level::Avx512, Level::Avx2, Level::Neon})
        if (cpuSupports(l))
            return l;
    return Level::Scalar;
}

void
noteDispatch(Level level)
{
    MetricsRegistry::instance()
        .counter(strCat("simd.dispatch.", levelName(level)))
        ->inc();
}

Level
ensureResolved()
{
    const int loaded = gActiveLevel.load(std::memory_order_acquire);
    if (loaded >= 0)
        return static_cast<Level>(loaded);
    // Thread-safe one-time resolution; concurrent first calls agree
    // because resolveInitialLevel() is a pure function of env + cpuid.
    static const Level initial = [] {
        const Level l = resolveInitialLevel();
        gActiveLevel.store(static_cast<int>(l), std::memory_order_release);
        noteDispatch(l);
        return l;
    }();
    return initial;
}

} // namespace

const char *
levelName(Level level)
{
    return tableFor(level).name;
}

const KernelTable &
activeKernels()
{
    return tableFor(ensureResolved());
}

Level
activeLevel()
{
    return ensureResolved();
}

void
setActiveLevel(Level level)
{
    require(cpuSupports(level),
            strCat("setActiveLevel: this CPU/build cannot run '",
                   levelName(level), "'"));
    ensureResolved(); // keep first-use resolution ordering simple
    gActiveLevel.store(static_cast<int>(level), std::memory_order_release);
    noteDispatch(level);
}

std::vector<Level>
availableLevels()
{
    std::vector<Level> out;
    for (Level l : {Level::Scalar, Level::Neon, Level::Avx2, Level::Avx512})
        if (cpuSupports(l))
            out.push_back(l);
    return out;
}

bool
levelSupported(Level level)
{
    return cpuSupports(level);
}

bool
parseLevel(const std::string &name, Level *out)
{
    for (Level l : {Level::Scalar, Level::Neon, Level::Avx2, Level::Avx512})
        if (name == levelName(l)) {
            *out = l;
            return true;
        }
    return false;
}

MicroKernelFn
microKernelForLevel(Level level)
{
    return cpuSupports(level) ? tableFor(level).microKernel : nullptr;
}

} // namespace lrd::simd
