#include "tensor/simd/fused.h"

#include <algorithm>
#include <vector>

#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "util/logging.h"

namespace lrd::simd {

namespace {

/**
 * Combined packed-factor footprint below which the per-panel chained
 * mode wins: all three factor panels stay cache-resident while a row
 * panel streams through them, so the t1/t2 intermediates never leave
 * L1. Above it, re-streaming every factor once per row panel costs
 * more than the intermediate locality buys, and the stage mode (one
 * pass per factor over all rows, materializing the small m x pr
 * intermediates) is faster. The mode depends only on weight shapes,
 * never on thread count, preserving determinism.
 */
constexpr int64_t kPanelModeMaxWeightBytes = 512LL * 1024;

/** One full-m pass c = a * packedB, parallel over row panels. */
void
stagePass(const float *a, int64_t lda, int64_t m, const PackedMat &b,
          float *c, int64_t ldc)
{
    const int64_t rowPanels = (m + kRowChunk - 1) / kRowChunk;
    parallelFor(0, rowPanels, 1, [&](int64_t lo, int64_t hi) {
        thread_local std::vector<float> apack;
        // lrd-lint: allow(hot-path-alloc) thread_local scratch: sized on each thread's first panel, reused after
        apack.resize(static_cast<size_t>(kRowChunk * kKc));
        for (int64_t panel = lo; panel < hi; ++panel) {
            const int64_t r0 = panel * kRowChunk;
            const int64_t mc = std::min(kRowChunk, m - r0);
            gemmPackedB(a + r0 * lda, lda, mc, b, c + r0 * ldc, ldc,
                        apack.data());
        }
    });
}

void
addBiasRows(float *y, int64_t m, int64_t out, const float *bias)
{
    for (int64_t i = 0; i < m; ++i) {
        float *yrow = y + i * out;
        for (int64_t j = 0; j < out; ++j)
            yrow[j] += bias[j];
    }
}

} // namespace

void
fusedFactorizedForward(const float *x, int64_t m, int64_t in, int64_t pr,
                       int64_t out, const PackedMat &u2t,
                       const PackedMat &coret, const PackedMat &u1t,
                       const float *bias, float *y)
{
    LRD_TRACE_SPAN("fusedFactorizedForward");
    require(u2t.k == in && u2t.n == pr && coret.k == pr && coret.n == pr &&
                u1t.k == pr && u1t.n == out,
            "fusedFactorizedForward: packed factor shapes do not chain");
    const int64_t weightBytes =
        static_cast<int64_t>(u2t.data.size() + coret.data.size() +
                             u1t.data.size()) *
        static_cast<int64_t>(sizeof(float));
    if (weightBytes > kPanelModeMaxWeightBytes) {
        // Stage mode: one pass per factor over all rows; the m x pr
        // intermediates are materialized but each factor's panels are
        // streamed through the cache hierarchy only once per pass.
        std::vector<float> t1(static_cast<size_t>(m * pr));
        std::vector<float> t2(static_cast<size_t>(m * pr));
        stagePass(x, in, m, u2t, t1.data(), pr);
        stagePass(t1.data(), pr, m, coret, t2.data(), pr);
        stagePass(t2.data(), pr, m, u1t, y, out);
        if (bias != nullptr)
            addBiasRows(y, m, out, bias);
        return;
    }
    // Panel mode: chain all three factors per row panel; t1/t2 cover
    // only kRowChunk rows and stay resident next to the (small)
    // packed factors.
    const int64_t rowPanels = (m + kRowChunk - 1) / kRowChunk;
    parallelFor(0, rowPanels, 1, [&](int64_t lo, int64_t hi) {
        thread_local std::vector<float> apack;
        thread_local std::vector<float> t1;
        thread_local std::vector<float> t2;
        apack.resize(static_cast<size_t>(kRowChunk * kKc)); // lrd-lint: allow(hot-path-alloc) thread_local, first panel only
        t1.resize(static_cast<size_t>(kRowChunk * pr)); // lrd-lint: allow(hot-path-alloc) thread_local, first panel only
        t2.resize(static_cast<size_t>(kRowChunk * pr)); // lrd-lint: allow(hot-path-alloc) thread_local, first panel only
        for (int64_t panel = lo; panel < hi; ++panel) {
            const int64_t r0 = panel * kRowChunk;
            const int64_t mc = std::min(kRowChunk, m - r0);
            gemmPackedB(x + r0 * in, in, mc, u2t, t1.data(), pr,
                        apack.data());
            gemmPackedB(t1.data(), pr, mc, coret, t2.data(), pr,
                        apack.data());
            gemmPackedB(t2.data(), pr, mc, u1t, y + r0 * out, out,
                        apack.data());
            if (bias != nullptr)
                addBiasRows(y + r0 * out, mc, out, bias);
        }
    });
}

} // namespace lrd::simd
