/**
 * @file
 * Runtime-dispatched SIMD microkernels for the packed GEMM driver.
 *
 * The blocked GEMM in tensor/ops.cc packs operands into fixed
 * MR x NR panels (see tensor/simd/pack.h) and multiplies them with an
 * inner register-tile microkernel. This header is the dispatch seam:
 * the kernel implementation is chosen once per process from the CPU's
 * capabilities (cpuid via __builtin_cpu_supports) or pinned with the
 * LRD_SIMD environment variable, and every caller fetches it through
 * activeKernels().
 *
 * Levels:
 *  - scalar: portable C++ kernel (the compiler may still auto-
 *    vectorize it for the -march baseline of the build). Always
 *    available; the reference for parity tests.
 *  - neon:   AArch64 NEON (vfmaq_f32), compiled only on ARM builds.
 *  - avx2:   x86 AVX2+FMA, compiled per-TU with -mavx2 -mfma and run
 *    only when cpuid reports both features.
 *  - avx512: x86 AVX-512F, compiled per-TU with -mavx512f.
 *
 * Determinism contract: for a FIXED level, every kernel accumulates
 * each C element over k in the same ascending order, so results are
 * bitwise identical at any LRD_THREADS setting. Across levels the
 * bits may differ (FMA contraction, lane tails); parity is within the
 * tolerance documented in docs/ARCHITECTURE.md and enforced by
 * tests/gemm_reference_test.cc.
 *
 * All intrinsics (<immintrin.h>, <arm_neon.h>) are confined to
 * src/tensor/simd/ — machine-enforced by the lrd-lint rule
 * `intrinsics-outside-simd`.
 */

#ifndef LRD_TENSOR_SIMD_SIMD_H
#define LRD_TENSOR_SIMD_SIMD_H

#include <cstdint>
#include <string>
#include <vector>

namespace lrd::simd {

/** Instruction-set level of a microkernel implementation. */
enum class Level { Scalar = 0, Neon = 1, Avx2 = 2, Avx512 = 3 };

/**
 * Inner microkernel: C tile (mr x nr, mr <= kMr, nr <= kNr) +=/= the
 * product of one packed A panel (k-major, kMr wide) and one packed B
 * panel (p-major, kNr wide) over kc. `addInto` selects C += acc
 * versus C = acc. Padded pack lanes feed only discarded accumulator
 * entries, so IEEE specials propagate exactly like the scalar kernel
 * (no zero-skip).
 */
using MicroKernelFn = void (*)(const float *ap, const float *bp, int64_t kc,
                               float *c, int64_t ldc, int64_t mr, int64_t nr,
                               bool addInto);

/** The per-level kernel entry; one row of the dispatch table. */
struct KernelTable
{
    Level level = Level::Scalar;
    const char *name = "scalar";
    MicroKernelFn microKernel = nullptr;
};

/** Stable lowercase name ("scalar", "neon", "avx2", "avx512"). */
const char *levelName(Level level);

/**
 * The active kernel table. Resolved on first use: LRD_SIMD=scalar|
 * neon|avx2|avx512 pins the level (fatal if the CPU cannot run it),
 * otherwise the highest supported level wins. The choice is recorded
 * on the obs counter "simd.dispatch.<name>".
 */
const KernelTable &activeKernels();

/** Level of the active kernel table. */
Level activeLevel();

/**
 * Override the active level (tests, benchmarks). Fatal when the CPU
 * does not support `level`. Must not be called from inside a parallel
 * region; the change applies to subsequent GEMM calls.
 */
void setActiveLevel(Level level);

/** Every level this CPU can run, lowest (scalar) first. */
std::vector<Level> availableLevels();

/** Whether the CPU can run kernels of the given level. */
bool levelSupported(Level level);

/** Parse a LRD_SIMD-style name; returns false on unknown names. */
bool parseLevel(const std::string &name, Level *out);

/** Per-level microkernel, or nullptr when not compiled/supported.
 *  Exposed for parity tests; production code uses activeKernels(). */
MicroKernelFn microKernelForLevel(Level level);

} // namespace lrd::simd

#endif // LRD_TENSOR_SIMD_SIMD_H
