/**
 * @file
 * AArch64 NEON microkernel. The 8 x 48 packed tile is processed as
 * six 4 x 16 sub-tiles (16 q-register accumulators + 4 B lanes + 1
 * broadcast = 21 of 32 registers), mirroring the AVX2 kernel's
 * structure with 4-wide lanes.
 *
 * NEON is architecturally guaranteed on AArch64, so this TU needs no
 * extra -m flags there; on non-ARM builds it degrades to a nullptr
 * table entry.
 */

#include "tensor/simd/kernels.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include "tensor/simd/pack.h"

namespace lrd::simd {

namespace {

/** One 4 x 16 sub-tile at rows [ib, ib+4) x cols [jb, jb+16). */
inline void
subTile4x16(const float *ap, const float *bp, int64_t kc, float *c,
            int64_t ldc, int64_t ib, int64_t jb, bool addInto)
{
    float32x4_t acc[4][4];
    for (int r = 0; r < 4; ++r)
        for (int v = 0; v < 4; ++v)
            acc[r][v] = vdupq_n_f32(0.0F);
    for (int64_t p = 0; p < kc; ++p) {
        const float *arow = ap + p * kMr + ib;
        const float *brow = bp + p * kNr + jb;
        const float32x4_t b0 = vld1q_f32(brow);
        const float32x4_t b1 = vld1q_f32(brow + 4);
        const float32x4_t b2 = vld1q_f32(brow + 8);
        const float32x4_t b3 = vld1q_f32(brow + 12);
        for (int r = 0; r < 4; ++r) {
            const float32x4_t av = vdupq_n_f32(arow[r]);
            acc[r][0] = vfmaq_f32(acc[r][0], av, b0);
            acc[r][1] = vfmaq_f32(acc[r][1], av, b1);
            acc[r][2] = vfmaq_f32(acc[r][2], av, b2);
            acc[r][3] = vfmaq_f32(acc[r][3], av, b3);
        }
    }
    for (int r = 0; r < 4; ++r) {
        float *crow = c + (ib + r) * ldc + jb;
        for (int v = 0; v < 4; ++v) {
            float32x4_t out = acc[r][v];
            if (addInto)
                out = vaddq_f32(out, vld1q_f32(crow + 4 * v));
            vst1q_f32(crow + 4 * v, out);
        }
    }
}

void
fullTile(const float *ap, const float *bp, int64_t kc, float *c, int64_t ldc,
         bool addInto)
{
    for (int64_t ib = 0; ib < kMr; ib += 4)
        for (int64_t jb = 0; jb < kNr; jb += 16)
            subTile4x16(ap, bp, kc, c, ldc, ib, jb, addInto);
}

void
microKernelNeon(const float *ap, const float *bp, int64_t kc, float *c,
                int64_t ldc, int64_t mr, int64_t nr, bool addInto)
{
    if (mr == kMr && nr == kNr) {
        fullTile(ap, bp, kc, c, ldc, addInto);
        return;
    }
    float buf[kMr * kNr];
    fullTile(ap, bp, kc, buf, kNr, /*addInto=*/false);
    if (addInto) {
        for (int64_t i = 0; i < mr; ++i)
            for (int64_t j = 0; j < nr; ++j)
                c[i * ldc + j] += buf[i * kNr + j];
    } else {
        for (int64_t i = 0; i < mr; ++i)
            for (int64_t j = 0; j < nr; ++j)
                c[i * ldc + j] = buf[i * kNr + j];
    }
}

} // namespace

const MicroKernelFn kMicroKernelNeon = &microKernelNeon;

} // namespace lrd::simd

#else // !(__aarch64__ && __ARM_NEON)

namespace lrd::simd {
const MicroKernelFn kMicroKernelNeon = nullptr;
} // namespace lrd::simd

#endif
