/**
 * @file
 * Dense row-major N-dimensional float tensor.
 *
 * This is the single numeric container used by the whole library:
 * model weights, activations, decomposition factors, and gradients.
 * Storage is value-semantic (owned std::vector<float>); copies are
 * deep, moves are cheap.
 */

#ifndef LRD_TENSOR_TENSOR_H
#define LRD_TENSOR_TENSOR_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.h"

namespace lrd {

/** Shape of a tensor: per-mode extents. */
using Shape = std::vector<int64_t>;

/** Human-readable "[a, b, c]" rendering of a shape. */
std::string shapeToString(const Shape &shape);

/** Product of extents (the element count); 1 for an empty shape. */
int64_t numElements(const Shape &shape);

/**
 * Dense row-major N-dimensional tensor of float32.
 *
 * Rank-0 tensors (scalars) are permitted and hold one element.
 * All indexing is bounds-checked in debug-style accessors (at());
 * the raw data() pointer is available for hot loops.
 */
class Tensor
{
  public:
    /** An empty (rank-0, single element, zero) tensor. */
    Tensor();

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Tensor with explicit contents; data.size() must match shape. */
    Tensor(Shape shape, std::vector<float> data);

    /** @name Arena-accounted special members
     *  Every tensor reports its payload bytes to the process-wide
     *  arena counters (util/memprobe.h) so the telemetry sampler can
     *  chart live/peak numeric memory without walking live objects.
     *  Moves transfer the accounted bytes; copies account their own.
     *  @{
     */
    ~Tensor();
    Tensor(const Tensor &other);
    Tensor(Tensor &&other) noexcept;
    Tensor &operator=(const Tensor &other);
    Tensor &operator=(Tensor &&other) noexcept;
    /** @} */

    /** @name Factories
     *  @{
     */
    static Tensor zeros(Shape shape);
    static Tensor ones(Shape shape);
    static Tensor full(Shape shape, float value);
    /** Identity matrix of size n x n. */
    static Tensor eye(int64_t n);
    /** I.i.d. normal entries with the given std deviation. */
    static Tensor randn(Shape shape, Rng &rng, float stddev = 1.0F);
    /** I.i.d. uniform entries in [lo, hi). */
    static Tensor randu(Shape shape, Rng &rng, float lo = 0.0F,
                        float hi = 1.0F);
    /** @} */

    const Shape &shape() const { return shape_; }
    int64_t rank() const { return static_cast<int64_t>(shape_.size()); }
    int64_t size() const { return static_cast<int64_t>(data_.size()); }
    /** Extent of mode i (bounds-checked). */
    int64_t dim(int64_t i) const;

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }
    std::vector<float> &storage() { return data_; }
    const std::vector<float> &storage() const { return data_; }

    /** Bounds-checked element access by multi-index. */
    float &at(const std::vector<int64_t> &index);
    float at(const std::vector<int64_t> &index) const;

    /** Fast 2D accessors (asserts rank() == 2 in checked paths). */
    float &operator()(int64_t i, int64_t j);
    float operator()(int64_t i, int64_t j) const;

    /** Flat element access. */
    float &operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
    float operator[](int64_t i) const
    {
        return data_[static_cast<size_t>(i)];
    }

    /** Linear offset of a multi-index (row-major). */
    int64_t offsetOf(const std::vector<int64_t> &index) const;

    /**
     * Reinterpret with a new shape of identical element count.
     * @throws via fatal() when the element counts differ.
     */
    Tensor reshaped(Shape shape) const;

    /** Set every element to the given value. */
    void fill(float value);

    /** True when every element is finite. */
    bool allFinite() const;

    /** Sum of all elements. */
    double sum() const;

    /** Frobenius norm (sqrt of sum of squares). */
    double norm() const;

    /** Smallest / largest element (tensor must be non-empty). */
    float minValue() const;
    float maxValue() const;

    /** "[shape] (n elems)" debugging summary. */
    std::string describe() const;

  private:
    /** Report this tensor's payload to the arena counters. */
    void accountAlloc();

    Shape shape_;
    std::vector<float> data_;
    /** Bytes this instance reported as allocated (0 after move-out);
     *  external growth through storage() is deliberately unaccounted
     *  — the counters are a telemetry gauge, not an allocator. */
    int64_t accountedBytes_ = 0;
};

} // namespace lrd

#endif // LRD_TENSOR_TENSOR_H
