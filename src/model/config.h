/**
 * @file
 * Model architecture configuration and the per-layer weight-tensor
 * taxonomy from Figure 4 of the paper.
 *
 * Two architecture families are supported, mirroring the paper:
 *  - LlamaStyle: decoder-only, pre-RMSNorm, RoPE, SwiGLU MLP;
 *    7 decomposable tensors per layer (Wq, Wk, Wv, Wso, Wg, Wu, Wd).
 *  - BertStyle: encoder-only, post-LayerNorm, learned positions, GELU
 *    MLP; 6 decomposable tensors per layer (Wq, Wk, Wv, Wso, Wint,
 *    Wout).
 *
 * Besides the trainable "tiny" presets, shape-only presets encode the
 * exact dimensions of BERT-Base/Large and Llama2-7B/70B for the
 * analytical studies (Tables 1 and 2, Figures 10-12).
 */

#ifndef LRD_MODEL_CONFIG_H
#define LRD_MODEL_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace lrd {

/** Architecture family. */
enum class Arch { LlamaStyle, BertStyle };

/** Per-layer decomposable weight tensors (paper Figure 4). */
enum class WeightKind {
    Query,      ///< W_Q
    Key,        ///< W_K
    Value,      ///< W_V
    SelfOutput, ///< W_SO (attention output projection)
    Gate,       ///< W_G (Llama MLP gate projection)
    Up,         ///< W_U (Llama MLP up projection)
    Down,       ///< W_D (Llama MLP down projection)
    Intermediate, ///< W_Int (BERT intermediate FC)
    Output,       ///< W_Out (BERT output FC)
};

/** Short name used in tables ("Wq", "Wint", ...). */
std::string weightKindName(WeightKind kind);

/** The decomposable tensor kinds for an architecture, in paper order. */
std::vector<WeightKind> decomposableKinds(Arch arch);

/** Architecture + dimensions of a transformer model. */
struct ModelConfig
{
    std::string name = "unnamed";
    Arch arch = Arch::LlamaStyle;
    int64_t vocabSize = 0;
    int64_t dModel = 0;
    int64_t nLayers = 0;
    int64_t nHeads = 0;
    /** Key/value heads for grouped-query attention; 0 means MHA
     *  (nKvHeads == nHeads). Llama2-70B uses 8. */
    int64_t nKvHeads = 0;
    int64_t dFf = 0;     ///< MLP hidden width.
    int64_t maxSeq = 0;  ///< Maximum sequence length.

    int64_t headDim() const { return dModel / nHeads; }
    int64_t kvHeads() const { return nKvHeads > 0 ? nKvHeads : nHeads; }
    /** Width of the K/V projections (= dModel under plain MHA). */
    int64_t kvDim() const { return kvHeads() * headDim(); }
    bool causal() const { return arch == Arch::LlamaStyle; }

    /** Number of decomposable tensors per layer (paper Table 2). */
    int64_t numDecomposableTensors() const;

    /** Shape (rows=out, cols=in) of a per-layer weight tensor.
     *  @throws via fatal() when `kind` does not exist in this arch. */
    std::vector<int64_t> weightShape(WeightKind kind) const;

    /** Parameters in one layer's decomposable tensors. */
    int64_t layerDecomposableParams() const;

    /** Total parameters (embeddings + layers + head + norms). */
    int64_t totalParams() const;

    /** Parameters in all decomposable tensors across all layers. */
    int64_t allDecomposableParams() const;

    /** Sanity-check dimensions; calls fatal() on violation. */
    void validate() const;
};

/** @name Presets
 *  Trainable tiny models plus exact shape-only configs of the models
 *  the paper studies.
 *  @{
 */
/** Trainable decoder used for all accuracy case studies (8 layers). */
ModelConfig tinyLlamaConfig();
/** Trainable encoder used for the BERT panels. */
ModelConfig tinyBertConfig();
/** Even smaller config for unit tests. */
ModelConfig testLlamaConfig();
ModelConfig testBertConfig();
/** Shape-only configs with the real published dimensions. */
ModelConfig llama2_7bConfig();
ModelConfig llama2_70bConfig();
ModelConfig bertBaseConfig();
ModelConfig bertLargeConfig();
/** @} */

} // namespace lrd

#endif // LRD_MODEL_CONFIG_H
