#include "mlp.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace lrd {

namespace {

float
sigmoidf(float x)
{
    return 1.0F / (1.0F + std::exp(-x));
}

/** d/dx silu(x). */
float
siluGrad(float x)
{
    const float s = sigmoidf(x);
    return s * (1.0F + x * (1.0F - s));
}

/** d/dx gelu(x) for the tanh approximation. */
float
geluGrad(float x)
{
    constexpr float kC = 0.7978845608028654F; // sqrt(2/pi)
    const float x3 = x * x * x;
    const float inner = kC * (x + 0.044715F * x3);
    const float t = std::tanh(inner);
    const float dInner = kC * (1.0F + 3.0F * 0.044715F * x * x);
    return 0.5F * (1.0F + t) + 0.5F * x * (1.0F - t * t) * dInner;
}

} // namespace

Mlp::Mlp(const ModelConfig &cfg, int64_t layerIdx, Rng &rng)
    : arch_(cfg.arch)
{
    const std::string base = strCat("layer", layerIdx, ".mlp.");
    if (arch_ == Arch::LlamaStyle) {
        wg_ = std::make_unique<Linear>(cfg.dFf, cfg.dModel, false,
                                       base + "wg", rng);
        wu_ = std::make_unique<Linear>(cfg.dFf, cfg.dModel, false,
                                       base + "wu", rng);
        wd_ = std::make_unique<Linear>(cfg.dModel, cfg.dFf, false,
                                       base + "wd", rng);
    } else {
        wg_ = std::make_unique<Linear>(cfg.dFf, cfg.dModel, true,
                                       base + "wint", rng);
        wd_ = std::make_unique<Linear>(cfg.dModel, cfg.dFf, true,
                                       base + "wout", rng);
    }
    // Residual-output init scaling (see MultiHeadAttention).
    const float scale =
        1.0F / std::sqrt(2.0F * static_cast<float>(cfg.nLayers));
    for (int64_t i = 0; i < wd_->weight().value.size(); ++i)
        wd_->weight().value[i] *= scale;
}

Tensor
Mlp::forward(const Tensor &x)
{
    if (arch_ == Arch::LlamaStyle) {
        cachedGatePre_ = wg_->forward(x);
        cachedUp_ = wu_->forward(x);
        Tensor h = hadamard(silu(cachedGatePre_), cachedUp_);
        return wd_->forward(h);
    }
    cachedGatePre_ = wg_->forward(x);
    return wd_->forward(gelu(cachedGatePre_));
}

Tensor
Mlp::backward(const Tensor &dy)
{
    Tensor dh = wd_->backward(dy);
    if (arch_ == Arch::LlamaStyle) {
        // h = silu(g) * u.
        Tensor dg(cachedGatePre_.shape());
        Tensor du(cachedUp_.shape());
        const float *g = cachedGatePre_.data();
        const float *u = cachedUp_.data();
        const float *dhp = dh.data();
        float *dgp = dg.data();
        float *dup = du.data();
        for (int64_t i = 0; i < dh.size(); ++i) {
            const float sg = g[i] / (1.0F + std::exp(-g[i])); // silu(g)
            dup[i] = dhp[i] * sg;
            dgp[i] = dhp[i] * u[i] * siluGrad(g[i]);
        }
        Tensor dx = wg_->backward(dg);
        axpy(dx, 1.0F, wu_->backward(du));
        return dx;
    }
    // h = gelu(g).
    Tensor dg(cachedGatePre_.shape());
    const float *g = cachedGatePre_.data();
    const float *dhp = dh.data();
    float *dgp = dg.data();
    for (int64_t i = 0; i < dh.size(); ++i)
        dgp[i] = dhp[i] * geluGrad(g[i]);
    return wg_->backward(dg);
}

Linear &
Mlp::linear(WeightKind kind)
{
    switch (kind) {
      case WeightKind::Gate:
        require(arch_ == Arch::LlamaStyle, "Mlp::linear: Gate is Llama-only");
        return *wg_;
      case WeightKind::Up:
        require(arch_ == Arch::LlamaStyle, "Mlp::linear: Up is Llama-only");
        return *wu_;
      case WeightKind::Down:
        require(arch_ == Arch::LlamaStyle, "Mlp::linear: Down is Llama-only");
        return *wd_;
      case WeightKind::Intermediate:
        require(arch_ == Arch::BertStyle,
                "Mlp::linear: Intermediate is BERT-only");
        return *wg_;
      case WeightKind::Output:
        require(arch_ == Arch::BertStyle, "Mlp::linear: Output is BERT-only");
        return *wd_;
      default:
        panic("Mlp::linear: not an MLP tensor");
    }
}

std::vector<Parameter *>
Mlp::parameters()
{
    std::vector<Parameter *> ps;
    for (Linear *l : {wg_.get(), wu_.get(), wd_.get()}) {
        if (l == nullptr)
            continue;
        for (Parameter *p : l->parameters())
            ps.push_back(p);
    }
    return ps;
}

int64_t
Mlp::paramCount() const
{
    int64_t n = wg_->paramCount() + wd_->paramCount();
    if (wu_)
        n += wu_->paramCount();
    return n;
}

void
Mlp::clearCache()
{
    cachedGatePre_ = Tensor();
    cachedUp_ = Tensor();
    for (Linear *l : {wg_.get(), wu_.get(), wd_.get()})
        if (l != nullptr)
            l->clearCache();
}

} // namespace lrd
