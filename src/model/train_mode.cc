#include "model/train_mode.h"

#include <atomic>

namespace lrd {

namespace {
/** Depth of nested TrainingModeScope instances, across all threads:
 *  data-parallel replicas train concurrently under one logical step. */
std::atomic<int> gTrainingDepth{0};
} // namespace

bool
trainingModeActive()
{
    return gTrainingDepth.load(std::memory_order_acquire) > 0;
}

TrainingModeScope::TrainingModeScope()
{
    gTrainingDepth.fetch_add(1, std::memory_order_acq_rel);
}

TrainingModeScope::~TrainingModeScope()
{
    gTrainingDepth.fetch_sub(1, std::memory_order_acq_rel);
}

} // namespace lrd
