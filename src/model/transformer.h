/**
 * @file
 * The full transformer: embedding, a stack of blocks, final norm and
 * LM head. Provides training (forward + cross-entropy + backward),
 * full-sequence inference, KV-cache incremental inference, Tucker
 * decomposition of any (layer, tensor) pair, and serialization.
 */

#ifndef LRD_MODEL_TRANSFORMER_H
#define LRD_MODEL_TRANSFORMER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/attention.h"
#include "model/config.h"
#include "model/embedding.h"
#include "model/mlp.h"
#include "model/norms.h"

namespace lrd {

/**
 * One encoder/decoder layer. LlamaStyle uses pre-RMSNorm residual
 * blocks; BertStyle uses post-LayerNorm residual blocks.
 */
class TransformerBlock
{
  public:
    TransformerBlock(const ModelConfig &cfg, int64_t layerIdx, Rng &rng);

    Tensor forward(const Tensor &x);
    Tensor backward(const Tensor &dy);
    /** Incremental decode step (LlamaStyle only). */
    Tensor forwardCached(const Tensor &x, KvCache &cache);

    /** Access any decomposable tensor of this layer by kind. */
    Linear &linear(WeightKind kind);

    std::vector<Parameter *> parameters();
    int64_t paramCount() const;
    void clearCache();

  private:
    Arch arch_;
    std::unique_ptr<RmsNorm> rms1_, rms2_;
    std::unique_ptr<LayerNorm> ln1_, ln2_;
    std::unique_ptr<MultiHeadAttention> attn_;
    std::unique_ptr<Mlp> mlp_;
};

/** A complete decoder-only (Llama-style) or encoder-only (BERT-style)
 *  transformer language model. */
class TransformerModel
{
  public:
    explicit TransformerModel(const ModelConfig &cfg, uint64_t seed = 1234);

    const ModelConfig &config() const { return cfg_; }

    /** Full-sequence forward; returns logits (T, vocab). */
    Tensor forward(const TokenSeq &tokens);

    /**
     * Forward + mean cross-entropy over positions with target >= 0 +
     * full backward (gradients accumulate into parameters).
     *
     * For causal LM training pass targets[i] = tokens[i + 1]; for MLM
     * pass the original token at masked positions and -1 elsewhere.
     * @return Mean loss over supervised positions.
     */
    double lossAndGrad(const TokenSeq &tokens,
                       const std::vector<int> &targets);

    /** Forward-only mean cross-entropy (no gradients). */
    double loss(const TokenSeq &tokens, const std::vector<int> &targets);

    /** All trainable parameters (changes after factorization). */
    std::vector<Parameter *> parameters();

    /** Zero every parameter gradient. */
    void zeroGrad();

    /** Access a decomposable weight tensor. */
    Linear &linear(int64_t layer, WeightKind kind);

    /**
     * Factorize one weight with the given pruned rank (the paper's
     * per-tensor decomposition step). Returns the factorization
     * status; under the degrade policy a non-converged SVD leaves the
     * tensor dense and reports NonConvergence.
     */
    Status applyTucker(int64_t layer, WeightKind kind, int64_t prunedRank);

    /** Live parameter count (drops after decomposition). */
    int64_t paramCount() const;

    int64_t numLayers() const
    {
        return static_cast<int64_t>(blocks_.size());
    }
    TransformerBlock &block(int64_t i) { return *blocks_[static_cast<size_t>(i)]; }

    /**
     * Serialize weights (v2 format). Factorized layers are stored as
     * their Tucker factors plus a manifest, so compressed checkpoints
     * round-trip at their compressed size.
     */
    std::vector<uint8_t> serialize() const;
    /** Restore a model saved by serialize() (reads v1 and v2). */
    static TransformerModel deserialize(const std::vector<uint8_t> &bytes);

    /** Drop all cached activations. */
    void clearCache();

    /** Whether any linear layer is factorized. */
    bool anyFactorized() const;

  private:
    friend class InferenceSession;

    ModelConfig cfg_;
    std::unique_ptr<Embedding> embedding_;
    std::vector<std::unique_ptr<TransformerBlock>> blocks_;
    std::unique_ptr<RmsNorm> finalNorm_;
    std::unique_ptr<Linear> lmHead_;
};

/**
 * KV-cache incremental decoding session over a LlamaStyle model.
 * Sessions are cheaply copyable, which the evaluator uses to score
 * multiple choices against a shared context prefix.
 */
class InferenceSession
{
  public:
    explicit InferenceSession(TransformerModel &model);

    /** Clear the caches; the session restarts at position 0. */
    void reset();

    /**
     * Feed tokens and return the logits row of the last fed token
     * (shape (vocab)).
     */
    Tensor append(const TokenSeq &tokens);

    /** Number of tokens consumed so far. */
    int64_t length() const { return caches_.empty() ? 0 : caches_[0].len; }

  private:
    TransformerModel *model_;
    std::vector<KvCache> caches_;
};

/** Sum of log-probabilities of `continuation` given `context`. */
double scoreContinuation(TransformerModel &model, const TokenSeq &context,
                         const TokenSeq &continuation);

/**
 * Greedy decoding: feed `prompt`, then repeatedly append the argmax
 * token until `maxNew` tokens are emitted or `stopToken` appears
 * (the stop token is not included in the result).
 */
TokenSeq greedyGenerate(TransformerModel &model, const TokenSeq &prompt,
                        int maxNew, int stopToken);

} // namespace lrd

#endif // LRD_MODEL_TRANSFORMER_H
