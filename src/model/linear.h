/**
 * @file
 * Fully-connected layer supporting both dense weights and the paper's
 * three-factor Tucker form.
 *
 * Dense:      y = x W^T (+ b),        W of shape (out, in).
 * Factorized: W approx= U1 * core * U2 with U1 (out, pr),
 *             core (pr, pr), U2 (pr, in); the forward pass chains
 *             three small matmuls, which is exactly how the paper's
 *             decomposed fully-connected layers execute (Section 2.3).
 *
 * Both paths implement backward() so the accuracy-recovery fine-tuning
 * extension (paper Section 6) can train through factorized layers.
 */

#ifndef LRD_MODEL_LINEAR_H
#define LRD_MODEL_LINEAR_H

#include <string>
#include <vector>

#include "model/parameter.h"
#include "tensor/simd/pack.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace lrd {

class Counter;

/** Dense-or-factorized linear layer with manual backprop. */
class Linear
{
  public:
    /**
     * @param outDim Output features.
     * @param inDim  Input features.
     * @param hasBias Whether to include a bias vector.
     * @param name   Parameter-name prefix for optimizers/serialization.
     * @param rng    Initialization stream (scaled normal init).
     */
    Linear(int64_t outDim, int64_t inDim, bool hasBias,
           const std::string &name, Rng &rng);

    /** Forward pass for x of shape (n, in); caches x for backward. */
    Tensor forward(const Tensor &x);

    /**
     * Backward pass. Accumulates weight gradients and returns dL/dx.
     * Must be preceded by forward() on the same input.
     */
    Tensor backward(const Tensor &dy);

    /**
     * Replace the dense weight by its rank-pruned Tucker factors.
     *
     * A non-converged SVD is resolved by the active recovery policy:
     * strict fails fast, retry re-attempts a bounded number of times,
     * and degrade keeps the dense weight and returns the
     * NonConvergence status (the layer stays usable).
     *
     * @param prunedRank Pruned rank in [1, min(out, in)].
     */
    Status factorize(int64_t prunedRank);

    /**
     * Activation-aware factorization (ASVD-style): decompose
     * W * diag(colScale) and fold diag(1/colScale) back into U2, so
     * the truncation error is weighted by how strongly each input
     * feature is actually driven at inference time. Recovery policy
     * as in factorize().
     * @param colScale Positive per-input-feature scales (size in).
     */
    Status factorizeActivationAware(int64_t prunedRank,
                                    const std::vector<float> &colScale);

    /**
     * Switch to factorized layout with zero-initialized factors of
     * the given rank (no SVD); used when deserializing factorized
     * checkpoints whose factor values follow.
     */
    void installFactorShape(int64_t prunedRank);

    /** Contract the factors back into a dense weight. */
    void densify();

    bool isFactorized() const { return factorized_; }
    int64_t outDim() const { return outDim_; }
    int64_t inDim() const { return inDim_; }
    int64_t prunedRank() const { return prunedRank_; }

    /** Current parameter count (changes when factorized). */
    int64_t paramCount() const;

    /** Live parameters (dense: W[,b]; factorized: U1, core, U2[,b]). */
    std::vector<Parameter *> parameters();

    /** Dense weight accessor; fatal() when factorized. */
    Parameter &weight();
    const Parameter &weight() const;

    /** Effective dense weight: W, or U1*core*U2 when factorized. */
    Tensor effectiveWeight() const;

    /** Input of the most recent forward() (activation calibration). */
    const Tensor &lastInput() const { return cachedX_; }

    /** Reset the cached forward input (frees activation memory). */
    void clearCache();

    /**
     * Drop the pack-once factor panels used by the fused inference
     * path; they are rebuilt lazily on the next fused forward. Called
     * automatically by backward() and every factor-mutating method.
     * Direct factor writes (via parameters()) are also caught without
     * this call: each fused forward fingerprints the factor values
     * and repacks on mismatch, so stale panels can never be used.
     */
    void invalidatePackedWeights();

    /**
     * Process-wide switch for the fused factorized forward (chains
     * U2/core/U1 through register-blocked row panels against
     * pre-packed weights instead of materializing intermediates).
     * Defaults to on unless LRD_FUSED is 0/off; training-mode
     * forwards and skinny batches (rows < microkernel tile height)
     * always take the unfused path regardless.
     */
    static bool fusedForwardEnabled();
    static void setFusedForwardEnabled(bool enabled);

  private:
    int64_t outDim_;
    int64_t inDim_;
    bool hasBias_;
    bool factorized_ = false;
    int64_t prunedRank_ = 0;
    std::string name_; ///< Layer name; keys the per-layer MAC counter.
    /** "model.<name>.macs"; created on first forward with metrics on. */
    Counter *macsCounter_ = nullptr;

    Parameter w_;    ///< Dense (out, in); empty when factorized.
    Parameter u1_;   ///< (out, pr).
    Parameter core_; ///< (pr, pr).
    Parameter u2_;   ///< (pr, in).
    Parameter b_;    ///< (out), optional.

    // Forward caches for backward. The fused inference path leaves
    // cachedT1_/cachedT2_ empty; backward() recomputes them from
    // cachedX_ when a training step follows a fused forward.
    Tensor cachedX_;
    Tensor cachedT1_; ///< x * U2^T.
    Tensor cachedT2_; ///< t1 * core^T.

    /** Rebuild packedU*_ if dirty or the factors changed under us. */
    void ensurePackedFactors();
    /** FNV-1a over the factor values' bit patterns. */
    uint64_t factorFingerprint() const;

    // Pack-once weight panels for the fused serving path: U2^T,
    // core^T and U1^T in microkernel layout, rebuilt lazily after any
    // factor mutation (tracked by the dirty flag plus a value
    // fingerprint for writes that bypass this class).
    simd::PackedMat packedU2t_;
    simd::PackedMat packedCoret_;
    simd::PackedMat packedU1t_;
    uint64_t packedFingerprint_ = 0;
    bool packedDirty_ = true;
};

} // namespace lrd

#endif // LRD_MODEL_LINEAR_H
