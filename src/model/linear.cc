#include "linear.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "decomp/tucker.h"
#include "model/train_mode.h"
#include "obs/metrics.h"
#include "robust/recovery.h"
#include "tensor/ops.h"
#include "tensor/simd/fused.h"
#include "util/logging.h"

namespace lrd {

namespace {

/** Fused-path switch; resolved once from LRD_FUSED, then test-settable. */
std::atomic<bool> &
fusedToggle()
{
    static std::atomic<bool> enabled = [] {
        const char *env = std::getenv("LRD_FUSED");
        return env == nullptr ||
               (std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0);
    }();
    return enabled;
}

struct FusedCounters {
    Counter *fusedForwards;
    Counter *weightPacks;
};

FusedCounters &
fusedCounters()
{
    static FusedCounters c = [] {
        MetricsRegistry &reg = MetricsRegistry::instance();
        return FusedCounters{reg.counter("model.linear.fusedForwards"),
                             reg.counter("model.linear.weightPacks")};
    }();
    return c;
}

/**
 * Resolve a failed decomposition per the recovery policy: bounded
 * deterministic re-attempts under retry (injected faults are consumed
 * by their occurrence counters, so a retry can genuinely clear), fatal
 * under strict, and a degraded-but-usable dense layer otherwise.
 */
template <class Decompose>
Tucker2d
decomposeWithPolicy(const Decompose &decompose, const std::string &name)
{
    Tucker2d d = decompose();
    if (d.status.ok())
        return d;
    const RobustPolicy policy = robustPolicy();
    if (policy.mode == RobustMode::Retry) {
        for (int attempt = 0; attempt < policy.maxRetries && !d.status.ok();
             ++attempt) {
            noteRetry();
            d = decompose();
        }
        if (d.status.ok())
            return d;
    }
    if (policy.mode == RobustMode::Strict)
        fatal("Linear::factorize(" + name + "): " + d.status.toString());
    static Counter *degraded = MetricsRegistry::instance().counter(
        "robust.degradedFactorizations");
    degraded->inc();
    warn("Linear::factorize(" + name + "): keeping dense weight; "
         + d.status.toString());
    return d;
}

} // namespace

Linear::Linear(int64_t outDim, int64_t inDim, bool hasBias,
               const std::string &name, Rng &rng)
    : outDim_(outDim), inDim_(inDim), hasBias_(hasBias), name_(name)
{
    require(outDim > 0 && inDim > 0, "Linear: dims must be positive");
    const float stddev = 1.0F / std::sqrt(static_cast<float>(inDim));
    w_ = Parameter(name + ".w",
                   Tensor::randn({outDim, inDim}, rng, stddev));
    if (hasBias_)
        b_ = Parameter(name + ".b", Tensor({outDim}));
}

Tensor
Linear::forward(const Tensor &x)
{
    require(x.rank() == 2 && x.dim(1) == inDim_,
            strCat("Linear::forward: input ", shapeToString(x.shape()),
                   " incompatible with in dim ", inDim_));
    if (MetricsRegistry::enabled()) {
        if (!macsCounter_)
            macsCounter_ = MetricsRegistry::instance().counter(
                strCat("model.", name_, ".macs"));
        const int64_t n = x.dim(0);
        macsCounter_->add(
            !factorized_
                ? n * outDim_ * inDim_
                : n * prunedRank_ * inDim_
                      + n * prunedRank_ * prunedRank_
                      + n * outDim_ * prunedRank_);
    }
    cachedX_ = x;
    // Inference-only fused path: chain the three factor GEMMs through
    // register-blocked row panels against pre-packed weights, never
    // materializing the (n, pr) intermediates. Skinny batches (m <
    // one microkernel tile of rows) stay on the unfused path, whose
    // lane-dot fallback wastes no work on padded tiles.
    if (factorized_ && !trainingModeActive() && fusedForwardEnabled() &&
        x.dim(0) >= simd::kMr) {
        ensurePackedFactors();
        cachedT1_ = Tensor();
        cachedT2_ = Tensor();
        Tensor y({x.dim(0), outDim_});
        simd::fusedFactorizedForward(
            x.data(), x.dim(0), inDim_, prunedRank_, outDim_, packedU2t_,
            packedCoret_, packedU1t_,
            hasBias_ ? b_.value.data() : nullptr, y.data());
        fusedCounters().fusedForwards->inc();
        return y;
    }
    Tensor y;
    if (!factorized_) {
        y = matmulTransB(x, w_.value);
    } else {
        cachedT1_ = matmulTransB(x, u2_.value);          // (n, pr)
        cachedT2_ = matmulTransB(cachedT1_, core_.value); // (n, pr)
        y = matmulTransB(cachedT2_, u1_.value);          // (n, out)
    }
    if (hasBias_) {
        const int64_t n = y.dim(0);
        for (int64_t i = 0; i < n; ++i)
            for (int64_t j = 0; j < outDim_; ++j)
                y(i, j) += b_.value[j];
    }
    return y;
}

Tensor
Linear::backward(const Tensor &dy)
{
    require(dy.rank() == 2 && dy.dim(1) == outDim_,
            strCat("Linear::backward: grad ", shapeToString(dy.shape()),
                   " incompatible with out dim ", outDim_));
    require(cachedX_.rank() == 2 && dy.dim(0) == cachedX_.dim(0),
            "Linear::backward: no matching forward cached");

    if (hasBias_) {
        const int64_t n = dy.dim(0);
        for (int64_t i = 0; i < n; ++i)
            for (int64_t j = 0; j < outDim_; ++j)
                b_.grad[j] += dy(i, j);
    }

    if (!factorized_) {
        // dW += dy^T x ; dx = dy W.
        gemmTransA(dy.data(), cachedX_.data(), w_.grad.data(), dy.dim(0),
                   outDim_, inDim_, /*accumulate=*/true);
        return matmul(dy, w_.value);
    }

    // The upcoming optimizer step will mutate the factors, so the
    // packed panels are stale after this call.
    invalidatePackedWeights();

    // A fused forward skipped the intermediates; rebuild them.
    if (cachedT1_.rank() != 2 || cachedT1_.dim(0) != dy.dim(0)) {
        cachedT1_ = matmulTransB(cachedX_, u2_.value);
        cachedT2_ = matmulTransB(cachedT1_, core_.value);
    }

    // y = ((x U2^T) core^T) U1^T.
    Tensor dT2 = matmul(dy, u1_.value); // (n, pr)
    gemmTransA(dy.data(), cachedT2_.data(), u1_.grad.data(), dy.dim(0),
               outDim_, prunedRank_, true);
    Tensor dT1 = matmul(dT2, core_.value); // (n, pr)
    gemmTransA(dT2.data(), cachedT1_.data(), core_.grad.data(), dT2.dim(0),
               prunedRank_, prunedRank_, true);
    gemmTransA(dT1.data(), cachedX_.data(), u2_.grad.data(), dT1.dim(0),
               prunedRank_, inDim_, true);
    return matmul(dT1, u2_.value);
}

Status
Linear::factorize(int64_t prunedRank)
{
    require(!factorized_, "Linear::factorize: already factorized");
    Tucker2d d = decomposeWithPolicy(
        [&] { return tucker2dDecompose(w_.value, prunedRank); }, w_.name);
    if (!d.status.ok())
        return d.status;
    prunedRank_ = prunedRank;
    const std::string base = w_.name;
    u1_ = Parameter(base + ".u1", std::move(d.u1));
    core_ = Parameter(base + ".core", std::move(d.core));
    u2_ = Parameter(base + ".u2", std::move(d.u2));
    w_ = Parameter(base, Tensor({0}));
    factorized_ = true;
    invalidatePackedWeights();
    return Status();
}

Status
Linear::factorizeActivationAware(int64_t prunedRank,
                                 const std::vector<float> &colScale)
{
    require(!factorized_,
            "Linear::factorizeActivationAware: already factorized");
    require(static_cast<int64_t>(colScale.size()) == inDim_,
            strCat("Linear::factorizeActivationAware: ", colScale.size(),
                   " scales for in dim ", inDim_));
    for (float s : colScale)
        require(s > 0.0F && std::isfinite(s),
                "Linear::factorizeActivationAware: scales must be "
                "positive and finite");
    // Decompose W * diag(s); unscale U2 afterwards.
    Tensor scaled = w_.value;
    for (int64_t r = 0; r < outDim_; ++r) {
        float *row = scaled.data() + r * inDim_;
        for (int64_t c = 0; c < inDim_; ++c)
            row[c] *= colScale[static_cast<size_t>(c)];
    }
    Tucker2d d = decomposeWithPolicy(
        [&] { return tucker2dDecompose(scaled, prunedRank); }, w_.name);
    if (!d.status.ok())
        return d.status;
    for (int64_t r = 0; r < prunedRank; ++r) {
        float *row = d.u2.data() + r * inDim_;
        for (int64_t c = 0; c < inDim_; ++c)
            row[c] /= colScale[static_cast<size_t>(c)];
    }
    prunedRank_ = prunedRank;
    const std::string base = w_.name;
    u1_ = Parameter(base + ".u1", std::move(d.u1));
    core_ = Parameter(base + ".core", std::move(d.core));
    u2_ = Parameter(base + ".u2", std::move(d.u2));
    w_ = Parameter(base, Tensor({0}));
    factorized_ = true;
    invalidatePackedWeights();
    return Status();
}

void
Linear::installFactorShape(int64_t prunedRank)
{
    require(!factorized_, "Linear::installFactorShape: already factorized");
    require(prunedRank >= 1 && prunedRank <= std::min(outDim_, inDim_),
            strCat("Linear::installFactorShape: rank ", prunedRank,
                   " invalid for (", outDim_, ", ", inDim_, ")"));
    prunedRank_ = prunedRank;
    const std::string base = w_.name;
    u1_ = Parameter(base + ".u1", Tensor({outDim_, prunedRank}));
    core_ = Parameter(base + ".core", Tensor({prunedRank, prunedRank}));
    u2_ = Parameter(base + ".u2", Tensor({prunedRank, inDim_}));
    w_ = Parameter(base, Tensor({0}));
    factorized_ = true;
    invalidatePackedWeights();
}

void
Linear::densify()
{
    require(factorized_, "Linear::densify: not factorized");
    Tucker2d d;
    d.u1 = u1_.value;
    d.core = core_.value;
    d.u2 = u2_.value;
    const std::string base = u1_.name.substr(0, u1_.name.size() - 3);
    w_ = Parameter(base, d.reconstruct());
    u1_ = Parameter();
    core_ = Parameter();
    u2_ = Parameter();
    factorized_ = false;
    prunedRank_ = 0;
    invalidatePackedWeights();
}

int64_t
Linear::paramCount() const
{
    int64_t n = hasBias_ ? outDim_ : 0;
    if (factorized_)
        n += u1_.size() + core_.size() + u2_.size();
    else
        n += w_.size();
    return n;
}

std::vector<Parameter *>
Linear::parameters()
{
    std::vector<Parameter *> ps;
    if (factorized_) {
        ps.push_back(&u1_);
        ps.push_back(&core_);
        ps.push_back(&u2_);
    } else {
        ps.push_back(&w_);
    }
    if (hasBias_)
        ps.push_back(&b_);
    return ps;
}

Parameter &
Linear::weight()
{
    require(!factorized_, "Linear::weight: layer is factorized");
    return w_;
}

const Parameter &
Linear::weight() const
{
    require(!factorized_, "Linear::weight: layer is factorized");
    return w_;
}

Tensor
Linear::effectiveWeight() const
{
    if (!factorized_)
        return w_.value;
    return matmul(matmul(u1_.value, core_.value), u2_.value);
}

void
Linear::clearCache()
{
    cachedX_ = Tensor();
    cachedT1_ = Tensor();
    cachedT2_ = Tensor();
}

void
Linear::invalidatePackedWeights()
{
    packedU2t_ = simd::PackedMat();
    packedCoret_ = simd::PackedMat();
    packedU1t_ = simd::PackedMat();
    packedDirty_ = true;
}

uint64_t
Linear::factorFingerprint() const
{
    // FNV-1a over the float bit patterns of all three factors,
    // interleaved across 8 independent lanes so the hash is not one
    // serially-dependent multiply chain (that costs ~4 cycles per
    // element and showed up as ~25% of a fused h=512 forward). Every
    // element still feeds exactly one lane and the lanes are folded
    // with the same mix at the end, so a single flipped bit anywhere
    // still changes the result. One streaming pass over 2*h*r + r^2
    // words — cheaper than repacking and, with the lane ILP,
    // negligible next to the m * (2*h*r + r^2) MACs it guards.
    constexpr uint64_t kPrime = 1099511628211ULL;
    uint64_t lanes[8];
    for (uint64_t i = 0; i < 8; ++i)
        lanes[i] = 1469598103934665603ULL ^ ((i + 1) * kPrime);
    size_t next = 0;
    const auto mix = [&lanes, &next](const Tensor &t) {
        const float *d = t.data();
        const int64_t n = t.size();
        for (int64_t i = 0; i < n; ++i) {
            uint32_t bits;
            std::memcpy(&bits, &d[i], sizeof(bits));
            uint64_t &lane = lanes[next++ & 7];
            lane = (lane ^ bits) * kPrime;
        }
    };
    mix(u2_.value);
    mix(core_.value);
    mix(u1_.value);
    uint64_t h = 1469598103934665603ULL;
    for (uint64_t lane : lanes)
        h = (h ^ lane) * kPrime;
    return h;
}

void
Linear::ensurePackedFactors()
{
    // Catch external factor writes (via parameters()) that bypass
    // invalidatePackedWeights(): a fingerprint mismatch forces a
    // repack, so fused results can never be computed against stale
    // panels.
    const uint64_t fingerprint = factorFingerprint();
    if (!packedDirty_ && fingerprint == packedFingerprint_)
        return;
    // packMatrixB(M, k, n, trans=true) packs M^T without
    // materializing it; the fused chain is y = ((x U2^T) core^T) U1^T.
    packedU2t_ = simd::packMatrixB(u2_.value.data(), inDim_, prunedRank_,
                                   /*trans=*/true);
    packedCoret_ = simd::packMatrixB(core_.value.data(), prunedRank_,
                                     prunedRank_, /*trans=*/true);
    packedU1t_ = simd::packMatrixB(u1_.value.data(), prunedRank_, outDim_,
                                   /*trans=*/true);
    packedDirty_ = false;
    packedFingerprint_ = fingerprint;
    fusedCounters().weightPacks->inc();
}

bool
Linear::fusedForwardEnabled()
{
    return fusedToggle().load(std::memory_order_relaxed);
}

void
Linear::setFusedForwardEnabled(bool enabled)
{
    fusedToggle().store(enabled, std::memory_order_relaxed);
}

} // namespace lrd
