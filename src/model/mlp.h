/**
 * @file
 * Feed-forward blocks: SwiGLU (Llama-style, tensors W_G/W_U/W_D) and
 * GELU (BERT-style, tensors W_Int/W_Out), with manual backprop.
 */

#ifndef LRD_MODEL_MLP_H
#define LRD_MODEL_MLP_H

#include <memory>
#include <vector>

#include "model/config.h"
#include "model/linear.h"

namespace lrd {

/** Feed-forward network; the variant is selected by the architecture. */
class Mlp
{
  public:
    Mlp(const ModelConfig &cfg, int64_t layerIdx, Rng &rng);

    /** x (n, d) -> (n, d). Caches intermediates for backward. */
    Tensor forward(const Tensor &x);
    Tensor backward(const Tensor &dy);

    /** Access a decomposable tensor (Gate/Up/Down or Int/Out). */
    Linear &linear(WeightKind kind);

    std::vector<Parameter *> parameters();
    int64_t paramCount() const;
    void clearCache();

  private:
    Arch arch_;
    // Llama: gate/up/down. BERT: intermediate (wg_) / output (wd_)
    // with wu_ unused.
    std::unique_ptr<Linear> wg_, wu_, wd_;
    Tensor cachedGatePre_; ///< Pre-activation of the gate/intermediate.
    Tensor cachedUp_;      ///< Llama only: up-projection output.
};

} // namespace lrd

#endif // LRD_MODEL_MLP_H
