#include "embedding.h"

#include <cmath>

#include "util/logging.h"

namespace lrd {

Embedding::Embedding(int64_t vocab, int64_t dim, int64_t maxSeq,
                     bool usePositions, const std::string &name, Rng &rng)
    : vocab_(vocab), dim_(dim), usePositions_(usePositions)
{
    const float stddev = 0.02F;
    tok_ = Parameter(name + ".tok",
                     Tensor::randn({vocab, dim}, rng, stddev));
    if (usePositions_)
        pos_ = Parameter(name + ".pos",
                         Tensor::randn({maxSeq, dim}, rng, stddev));
}

Tensor
Embedding::forward(const TokenSeq &tokens, int64_t startPos)
{
    const auto n = static_cast<int64_t>(tokens.size());
    require(n > 0, "Embedding::forward: empty token sequence");
    if (usePositions_)
        require(startPos + n <= pos_.value.dim(0),
                strCat("Embedding::forward: positions ", startPos + n,
                       " exceed maxSeq ", pos_.value.dim(0)));
    cachedTokens_ = tokens;
    cachedStart_ = startPos;
    Tensor y({n, dim_});
    for (int64_t i = 0; i < n; ++i) {
        const int t = tokens[static_cast<size_t>(i)];
        require(t >= 0 && t < vocab_,
                strCat("Embedding::forward: token ", t,
                       " out of vocab ", vocab_));
        const float *row = tok_.value.data() + static_cast<int64_t>(t) * dim_;
        float *out = y.data() + i * dim_;
        for (int64_t j = 0; j < dim_; ++j)
            out[j] = row[j];
        if (usePositions_) {
            const float *prow =
                pos_.value.data() + (startPos + i) * dim_;
            for (int64_t j = 0; j < dim_; ++j)
                out[j] += prow[j];
        }
    }
    return y;
}

void
Embedding::backward(const Tensor &dy)
{
    const auto n = static_cast<int64_t>(cachedTokens_.size());
    require(dy.rank() == 2 && dy.dim(0) == n && dy.dim(1) == dim_,
            "Embedding::backward: grad shape mismatch");
    for (int64_t i = 0; i < n; ++i) {
        const int t = cachedTokens_[static_cast<size_t>(i)];
        float *grow = tok_.grad.data() + static_cast<int64_t>(t) * dim_;
        const float *drow = dy.data() + i * dim_;
        for (int64_t j = 0; j < dim_; ++j)
            grow[j] += drow[j];
        if (usePositions_) {
            float *prow = pos_.grad.data() + (cachedStart_ + i) * dim_;
            for (int64_t j = 0; j < dim_; ++j)
                prow[j] += drow[j];
        }
    }
}

std::vector<Parameter *>
Embedding::parameters()
{
    std::vector<Parameter *> ps = {&tok_};
    if (usePositions_)
        ps.push_back(&pos_);
    return ps;
}

} // namespace lrd
