/**
 * @file
 * Multi-head self-attention with optional causal masking and rotary
 * position embeddings, full-sequence forward/backward for training
 * and an incremental KV-cache path for autoregressive inference.
 *
 * The four projection weights (W_Q, W_K, W_V, W_SO) are the
 * attention-side decomposable tensors of the paper's Figure 4; each is
 * a Linear that can be swapped to its Tucker-factorized form.
 */

#ifndef LRD_MODEL_ATTENTION_H
#define LRD_MODEL_ATTENTION_H

#include <memory>
#include <vector>

#include "model/config.h"
#include "model/linear.h"

namespace lrd {

/** Per-layer key/value cache for incremental decoding. */
struct KvCache
{
    KvCache() = default;
    KvCache(int64_t maxSeq, int64_t dModel)
        : k({maxSeq, dModel}), v({maxSeq, dModel})
    {
    }

    Tensor k;        ///< Cached post-RoPE keys, rows 0..len.
    Tensor v;        ///< Cached values, rows 0..len.
    int64_t len = 0; ///< Number of valid cached positions.
};

/** Multi-head self-attention block. */
class MultiHeadAttention
{
  public:
    MultiHeadAttention(const ModelConfig &cfg, int64_t layerIdx, Rng &rng);

    /** Full-sequence forward: x (T, d) -> (T, d). Caches for backward. */
    Tensor forward(const Tensor &x);

    /** Backward through the last forward(); returns dL/dx. */
    Tensor backward(const Tensor &dy);

    /**
     * Incremental forward: append x's rows (usually one) at positions
     * cache.len..cache.len+n and attend over everything cached so far.
     * Does not populate training caches.
     */
    Tensor forwardCached(const Tensor &x, KvCache &cache);

    /** Access one of the four projection Linears by kind. */
    Linear &linear(WeightKind kind);

    std::vector<Parameter *> parameters();
    int64_t paramCount() const;
    void clearCache();

  private:
    /**
     * Apply (or invert) RoPE to rows holding `heads` concatenated
     * head slices, at absolute positions startPos...
     */
    void applyRope(Tensor &qk, int64_t startPos, bool inverse,
                   int64_t heads) const;

    int64_t dModel_;
    int64_t nHeads_;
    int64_t kvHeads_;  ///< < nHeads_ under grouped-query attention.
    int64_t kvDim_;    ///< kvHeads_ * headDim_.
    int64_t headDim_;
    bool causal_;
    bool useRope_;

    std::unique_ptr<Linear> wq_, wk_, wv_, wso_;

    // Training caches.
    Tensor cachedQ_, cachedK_, cachedV_; ///< Post-RoPE (T, d).
    Tensor cachedProbs_;                 ///< (nHeads, T, T) softmax rows.
};

} // namespace lrd

#endif // LRD_MODEL_ATTENTION_H
