/**
 * @file
 * Process-wide training-mode flag.
 *
 * Layers that specialize their forward pass for inference (e.g. the
 * fused factorized path in linear.cc, which skips materializing the
 * intermediates backward() needs) consult trainingModeActive() to
 * decide whether a backward pass may follow. Training entry points
 * (TransformerModel::lossAndGrad) hold a TrainingModeScope for the
 * duration of the forward+backward pair.
 */

#ifndef LRD_MODEL_TRAIN_MODE_H
#define LRD_MODEL_TRAIN_MODE_H

namespace lrd {

/** True while at least one TrainingModeScope is alive. */
bool trainingModeActive();

/** RAII marker for a forward pass that will be followed by backward().
 *  Nestable; the flag clears when the outermost scope exits. */
class TrainingModeScope
{
  public:
    TrainingModeScope();
    ~TrainingModeScope();
    TrainingModeScope(const TrainingModeScope &) = delete;
    TrainingModeScope &operator=(const TrainingModeScope &) = delete;
};

} // namespace lrd

#endif // LRD_MODEL_TRAIN_MODE_H
