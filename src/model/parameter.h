/**
 * @file
 * A trainable parameter: value plus accumulated gradient.
 */

#ifndef LRD_MODEL_PARAMETER_H
#define LRD_MODEL_PARAMETER_H

#include <string>

#include "tensor/tensor.h"

namespace lrd {

/** A named trainable tensor with its gradient accumulator. */
struct Parameter
{
    Parameter() = default;
    Parameter(std::string n, Tensor v)
        : name(std::move(n)), value(std::move(v)), grad(value.shape())
    {
    }

    std::string name;
    Tensor value;
    Tensor grad;

    void zeroGrad() { grad.fill(0.0F); }
    int64_t size() const { return value.size(); }
};

} // namespace lrd

#endif // LRD_MODEL_PARAMETER_H
