#include "config.h"

#include "util/logging.h"

namespace lrd {

std::string
weightKindName(WeightKind kind)
{
    switch (kind) {
      case WeightKind::Query: return "Wq";
      case WeightKind::Key: return "Wk";
      case WeightKind::Value: return "Wv";
      case WeightKind::SelfOutput: return "Wso";
      case WeightKind::Gate: return "Wg";
      case WeightKind::Up: return "Wu";
      case WeightKind::Down: return "Wd";
      case WeightKind::Intermediate: return "Wint";
      case WeightKind::Output: return "Wout";
    }
    panic("weightKindName: unknown kind");
}

std::vector<WeightKind>
decomposableKinds(Arch arch)
{
    if (arch == Arch::LlamaStyle) {
        return {WeightKind::Query, WeightKind::Key, WeightKind::Value,
                WeightKind::SelfOutput, WeightKind::Gate, WeightKind::Up,
                WeightKind::Down};
    }
    return {WeightKind::Query, WeightKind::Key, WeightKind::Value,
            WeightKind::SelfOutput, WeightKind::Intermediate,
            WeightKind::Output};
}

int64_t
ModelConfig::numDecomposableTensors() const
{
    return static_cast<int64_t>(decomposableKinds(arch).size());
}

std::vector<int64_t>
ModelConfig::weightShape(WeightKind kind) const
{
    switch (kind) {
      case WeightKind::Query:
      case WeightKind::SelfOutput:
        return {dModel, dModel};
      case WeightKind::Key:
      case WeightKind::Value:
        return {kvDim(), dModel};
      case WeightKind::Gate:
      case WeightKind::Up:
        require(arch == Arch::LlamaStyle,
                "weightShape: Gate/Up only exist in LlamaStyle");
        return {dFf, dModel};
      case WeightKind::Down:
        require(arch == Arch::LlamaStyle,
                "weightShape: Down only exists in LlamaStyle");
        return {dModel, dFf};
      case WeightKind::Intermediate:
        require(arch == Arch::BertStyle,
                "weightShape: Intermediate only exists in BertStyle");
        return {dFf, dModel};
      case WeightKind::Output:
        require(arch == Arch::BertStyle,
                "weightShape: Output only exists in BertStyle");
        return {dModel, dFf};
    }
    panic("weightShape: unknown kind");
}

int64_t
ModelConfig::layerDecomposableParams() const
{
    int64_t n = 0;
    for (WeightKind kind : decomposableKinds(arch)) {
        const auto shape = weightShape(kind);
        n += shape[0] * shape[1];
    }
    return n;
}

int64_t
ModelConfig::totalParams() const
{
    int64_t n = vocabSize * dModel; // token embedding
    if (arch == Arch::BertStyle)
        n += maxSeq * dModel; // learned positions
    // Per-layer: decomposable tensors + two norm scales (+ norm biases
    // and linear biases in BERT).
    int64_t perLayer = layerDecomposableParams();
    if (arch == Arch::LlamaStyle) {
        perLayer += 2 * dModel; // two RMSNorm weights
    } else {
        perLayer += 2 * 2 * dModel;            // two LayerNorms (w + b)
        perLayer += 4 * dModel + dFf + dModel; // linear biases
    }
    n += nLayers * perLayer;
    if (arch == Arch::LlamaStyle)
        n += dModel; // final RMSNorm
    n += vocabSize * dModel; // untied LM head
    return n;
}

int64_t
ModelConfig::allDecomposableParams() const
{
    return nLayers * layerDecomposableParams();
}

void
ModelConfig::validate() const
{
    require(vocabSize > 0, "ModelConfig: vocabSize must be positive");
    require(dModel > 0 && nLayers > 0 && nHeads > 0 && dFf > 0 && maxSeq > 0,
            "ModelConfig: all dimensions must be positive");
    require(dModel % nHeads == 0,
            strCat("ModelConfig: dModel ", dModel,
                   " not divisible by nHeads ", nHeads));
    require(headDim() % 2 == 0,
            "ModelConfig: head dim must be even (RoPE pairs)");
    require(nKvHeads >= 0 && kvHeads() <= nHeads
                && nHeads % kvHeads() == 0,
            strCat("ModelConfig: nKvHeads ", nKvHeads,
                   " must divide nHeads ", nHeads));
}

ModelConfig
tinyLlamaConfig()
{
    ModelConfig c;
    c.name = "tiny-llama";
    c.arch = Arch::LlamaStyle;
    c.vocabSize = 320;
    c.dModel = 64;
    c.nLayers = 8;
    c.nHeads = 4;
    c.dFf = 176;
    c.maxSeq = 96;
    return c;
}

ModelConfig
tinyBertConfig()
{
    ModelConfig c;
    c.name = "tiny-bert";
    c.arch = Arch::BertStyle;
    c.vocabSize = 320;
    c.dModel = 64;
    c.nLayers = 6;
    c.nHeads = 4;
    c.dFf = 192;
    c.maxSeq = 96;
    return c;
}

ModelConfig
testLlamaConfig()
{
    ModelConfig c;
    c.name = "test-llama";
    c.arch = Arch::LlamaStyle;
    c.vocabSize = 32;
    c.dModel = 16;
    c.nLayers = 2;
    c.nHeads = 2;
    c.dFf = 24;
    c.maxSeq = 24;
    return c;
}

ModelConfig
testBertConfig()
{
    ModelConfig c;
    c.name = "test-bert";
    c.arch = Arch::BertStyle;
    c.vocabSize = 32;
    c.dModel = 16;
    c.nLayers = 2;
    c.nHeads = 2;
    c.dFf = 24;
    c.maxSeq = 24;
    return c;
}

ModelConfig
llama2_7bConfig()
{
    ModelConfig c;
    c.name = "Llama2-7B";
    c.arch = Arch::LlamaStyle;
    c.vocabSize = 32000;
    c.dModel = 4096;
    c.nLayers = 32;
    c.nHeads = 32;
    c.dFf = 11008;
    c.maxSeq = 4096;
    return c;
}

ModelConfig
llama2_70bConfig()
{
    ModelConfig c;
    c.name = "Llama2-70B";
    c.arch = Arch::LlamaStyle;
    c.vocabSize = 32000;
    c.dModel = 8192;
    c.nLayers = 80;
    c.nHeads = 64;
    c.nKvHeads = 8; // grouped-query attention
    c.dFf = 28672;
    c.maxSeq = 4096;
    return c;
}

ModelConfig
bertBaseConfig()
{
    ModelConfig c;
    c.name = "BERT-Base";
    c.arch = Arch::BertStyle;
    c.vocabSize = 30522;
    c.dModel = 768;
    c.nLayers = 12;
    c.nHeads = 12;
    c.dFf = 3072;
    c.maxSeq = 512;
    return c;
}

ModelConfig
bertLargeConfig()
{
    ModelConfig c;
    c.name = "BERT-Large";
    c.arch = Arch::BertStyle;
    c.vocabSize = 30522;
    c.dModel = 1024;
    c.nLayers = 24;
    c.nHeads = 16;
    c.dFf = 4096;
    c.maxSeq = 512;
    return c;
}

} // namespace lrd
