#include "attention.h"

#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace lrd {

namespace {

Counter *
headsProcessedCounter()
{
    static Counter *c =
        MetricsRegistry::instance().counter("attn.headsProcessed");
    return c;
}

} // namespace

MultiHeadAttention::MultiHeadAttention(const ModelConfig &cfg,
                                       int64_t layerIdx, Rng &rng)
    : dModel_(cfg.dModel), nHeads_(cfg.nHeads), kvHeads_(cfg.kvHeads()),
      kvDim_(cfg.kvDim()), headDim_(cfg.headDim()),
      causal_(cfg.causal()), useRope_(cfg.arch == Arch::LlamaStyle)
{
    const bool bias = cfg.arch == Arch::BertStyle;
    const std::string base = strCat("layer", layerIdx, ".attn.");
    wq_ = std::make_unique<Linear>(dModel_, dModel_, bias, base + "wq", rng);
    wk_ = std::make_unique<Linear>(kvDim_, dModel_, bias, base + "wk", rng);
    wv_ = std::make_unique<Linear>(kvDim_, dModel_, bias, base + "wv", rng);
    wso_ =
        std::make_unique<Linear>(dModel_, dModel_, bias, base + "wso", rng);
    // Scale the residual-branch output projection down by
    // 1/sqrt(2 * nLayers) (GPT-2-style init) so deep post-LN stacks
    // train stably.
    const float scale =
        1.0F / std::sqrt(2.0F * static_cast<float>(cfg.nLayers));
    for (int64_t i = 0; i < wso_->weight().value.size(); ++i)
        wso_->weight().value[i] *= scale;
}

void
MultiHeadAttention::applyRope(Tensor &qk, int64_t startPos, bool inverse,
                              int64_t heads) const
{
    if (!useRope_)
        return;
    const int64_t n = qk.dim(0);
    const int64_t width = heads * headDim_;
    for (int64_t i = 0; i < n; ++i) {
        const auto p = static_cast<double>(startPos + i);
        float *row = qk.data() + i * width;
        for (int64_t h = 0; h < heads; ++h) {
            float *head = row + h * headDim_;
            for (int64_t d = 0; d < headDim_; d += 2) {
                const double freq = std::pow(
                    10000.0,
                    -static_cast<double>(d) / static_cast<double>(headDim_));
                double angle = p * freq;
                if (inverse)
                    angle = -angle;
                const auto c = static_cast<float>(std::cos(angle));
                const auto s = static_cast<float>(std::sin(angle));
                const float x = head[d];
                const float y = head[d + 1];
                head[d] = x * c - y * s;
                head[d + 1] = x * s + y * c;
            }
        }
    }
}

Tensor
MultiHeadAttention::forward(const Tensor &x)
{
    LRD_TRACE_SPAN("attn.forward");
    require(x.rank() == 2 && x.dim(1) == dModel_,
            strCat("MultiHeadAttention::forward: bad input ",
                   shapeToString(x.shape())));
    const int64_t t = x.dim(0);
    cachedQ_ = wq_->forward(x);
    cachedK_ = wk_->forward(x);
    cachedV_ = wv_->forward(x);
    applyRope(cachedQ_, 0, false, nHeads_);
    applyRope(cachedK_, 0, false, kvHeads_);

    const float invSqrt = 1.0F / std::sqrt(static_cast<float>(headDim_));
    cachedProbs_ = Tensor({nHeads_, t, t});
    Tensor ctx({t, dModel_});

    // Heads write disjoint probs planes and disjoint ctx column
    // slices, so the per-head loop parallelizes deterministically.
    const int64_t group = nHeads_ / kvHeads_;
    parallelFor(0, nHeads_, 1, [&](int64_t h0, int64_t h1) {
    headsProcessedCounter()->add(h1 - h0);
    for (int64_t h = h0; h < h1; ++h) {
        const int64_t kvh = h / group;
        float *probs = cachedProbs_.data() + h * t * t;
        for (int64_t i = 0; i < t; ++i) {
            const float *qrow = cachedQ_.data() + i * dModel_ + h * headDim_;
            float *prow = probs + i * t;
            const int64_t limit = causal_ ? i + 1 : t;
            float mx = -std::numeric_limits<float>::infinity();
            for (int64_t j = 0; j < limit; ++j) {
                const float *krow =
                    cachedK_.data() + j * kvDim_ + kvh * headDim_;
                float s = 0.0F;
                for (int64_t d = 0; d < headDim_; ++d)
                    s += qrow[d] * krow[d];
                s *= invSqrt;
                prow[j] = s;
                mx = std::max(mx, s);
            }
            float sum = 0.0F;
            for (int64_t j = 0; j < limit; ++j) {
                prow[j] = std::exp(prow[j] - mx);
                sum += prow[j];
            }
            const float inv = 1.0F / sum;
            for (int64_t j = 0; j < limit; ++j)
                prow[j] *= inv;
            for (int64_t j = limit; j < t; ++j)
                prow[j] = 0.0F;
            // ctx row = P V for this head.
            float *crow = ctx.data() + i * dModel_ + h * headDim_;
            for (int64_t j = 0; j < limit; ++j) {
                const float *vrow =
                    cachedV_.data() + j * kvDim_ + kvh * headDim_;
                const float p = prow[j];
                for (int64_t d = 0; d < headDim_; ++d)
                    crow[d] += p * vrow[d];
            }
        }
    }
    });
    return wso_->forward(ctx);
}

Tensor
MultiHeadAttention::backward(const Tensor &dy)
{
    LRD_TRACE_SPAN("attn.backward");
    const int64_t t = dy.dim(0);
    require(cachedProbs_.rank() == 3 && cachedProbs_.dim(1) == t,
            "MultiHeadAttention::backward: no matching forward cached");
    Tensor dCtx = wso_->backward(dy);

    const float invSqrt = 1.0F / std::sqrt(static_cast<float>(headDim_));
    Tensor dq({t, dModel_});
    Tensor dk({t, kvDim_});
    Tensor dv({t, kvDim_});

    // Heads within a KV group accumulate into the same dk/dv columns,
    // so the group (not the head) is the parallel unit; heads inside a
    // group run in ascending order, matching the serial accumulation.
    const int64_t group = nHeads_ / kvHeads_;
    parallelFor(0, kvHeads_, 1, [&](int64_t kv0, int64_t kv1) {
    headsProcessedCounter()->add((kv1 - kv0) * group);
    std::vector<float> dprow(static_cast<size_t>(t));
    for (int64_t h = kv0 * group; h < kv1 * group; ++h) {
        const int64_t kvh = h / group;
        const float *probs = cachedProbs_.data() + h * t * t;
        for (int64_t i = 0; i < t; ++i) {
            const float *prow = probs + i * t;
            const float *dcrow = dCtx.data() + i * dModel_ + h * headDim_;
            const int64_t limit = causal_ ? i + 1 : t;
            // dP = dCtx V^T ; dV += P^T dCtx.
            for (int64_t j = 0; j < limit; ++j) {
                const float *vrow =
                    cachedV_.data() + j * kvDim_ + kvh * headDim_;
                float *dvrow = dv.data() + j * kvDim_ + kvh * headDim_;
                float acc = 0.0F;
                const float p = prow[j];
                for (int64_t d = 0; d < headDim_; ++d) {
                    acc += dcrow[d] * vrow[d];
                    dvrow[d] += p * dcrow[d];
                }
                dprow[static_cast<size_t>(j)] = acc;
            }
            // Softmax backward: dS_j = P_j (dP_j - sum_k P_k dP_k).
            float inner = 0.0F;
            for (int64_t j = 0; j < limit; ++j)
                inner += prow[j] * dprow[static_cast<size_t>(j)];
            const float *qrow = cachedQ_.data() + i * dModel_ + h * headDim_;
            float *dqrow = dq.data() + i * dModel_ + h * headDim_;
            for (int64_t j = 0; j < limit; ++j) {
                const float ds =
                    prow[j] * (dprow[static_cast<size_t>(j)] - inner)
                    * invSqrt;
                const float *krow =
                    cachedK_.data() + j * kvDim_ + kvh * headDim_;
                float *dkrow = dk.data() + j * kvDim_ + kvh * headDim_;
                for (int64_t d = 0; d < headDim_; ++d) {
                    dqrow[d] += ds * krow[d];
                    dkrow[d] += ds * qrow[d];
                }
            }
        }
    }
    });

    // Invert RoPE on the gradients (rotation is orthogonal).
    applyRope(dq, 0, true, nHeads_);
    applyRope(dk, 0, true, kvHeads_);

    Tensor dx = wq_->backward(dq);
    axpy(dx, 1.0F, wk_->backward(dk));
    axpy(dx, 1.0F, wv_->backward(dv));
    return dx;
}

Tensor
MultiHeadAttention::forwardCached(const Tensor &x, KvCache &cache)
{
    LRD_TRACE_SPAN("attn.cached");
    require(x.rank() == 2 && x.dim(1) == dModel_,
            "MultiHeadAttention::forwardCached: bad input");
    const int64_t n = x.dim(0);
    const int64_t start = cache.len;
    require(start + n <= cache.k.dim(0),
            strCat("MultiHeadAttention::forwardCached: cache overflow (",
                   start + n, " > ", cache.k.dim(0), ")"));

    Tensor q = wq_->forward(x);
    Tensor k = wk_->forward(x);
    Tensor v = wv_->forward(x);
    applyRope(q, start, false, nHeads_);
    applyRope(k, start, false, kvHeads_);

    // Append to the cache (rows are kvDim wide under GQA).
    for (int64_t i = 0; i < n; ++i) {
        float *kdst = cache.k.data() + (start + i) * kvDim_;
        float *vdst = cache.v.data() + (start + i) * kvDim_;
        const float *ksrc = k.data() + i * kvDim_;
        const float *vsrc = v.data() + i * kvDim_;
        for (int64_t j = 0; j < kvDim_; ++j) {
            kdst[j] = ksrc[j];
            vdst[j] = vsrc[j];
        }
    }
    cache.len = start + n;

    const float invSqrt = 1.0F / std::sqrt(static_cast<float>(headDim_));
    Tensor ctx({n, dModel_});
    const int64_t group = nHeads_ / kvHeads_;
    parallelFor(0, nHeads_, 1, [&](int64_t h0, int64_t h1) {
    headsProcessedCounter()->add(h1 - h0);
    std::vector<float> scores(static_cast<size_t>(cache.len));
    for (int64_t h = h0; h < h1; ++h) {
        const int64_t kvh = h / group;
        for (int64_t i = 0; i < n; ++i) {
            const int64_t absPos = start + i;
            const int64_t limit = causal_ ? absPos + 1 : cache.len;
            const float *qrow = q.data() + i * dModel_ + h * headDim_;
            float mx = -std::numeric_limits<float>::infinity();
            for (int64_t j = 0; j < limit; ++j) {
                const float *krow =
                    cache.k.data() + j * kvDim_ + kvh * headDim_;
                float s = 0.0F;
                for (int64_t d = 0; d < headDim_; ++d)
                    s += qrow[d] * krow[d];
                s *= invSqrt;
                scores[static_cast<size_t>(j)] = s;
                mx = std::max(mx, s);
            }
            float sum = 0.0F;
            for (int64_t j = 0; j < limit; ++j) {
                scores[static_cast<size_t>(j)] =
                    std::exp(scores[static_cast<size_t>(j)] - mx);
                sum += scores[static_cast<size_t>(j)];
            }
            const float inv = 1.0F / sum;
            float *crow = ctx.data() + i * dModel_ + h * headDim_;
            for (int64_t j = 0; j < limit; ++j) {
                const float p = scores[static_cast<size_t>(j)] * inv;
                const float *vrow =
                    cache.v.data() + j * kvDim_ + kvh * headDim_;
                for (int64_t d = 0; d < headDim_; ++d)
                    crow[d] += p * vrow[d];
            }
        }
    }
    });
    return wso_->forward(ctx);
}

Linear &
MultiHeadAttention::linear(WeightKind kind)
{
    switch (kind) {
      case WeightKind::Query: return *wq_;
      case WeightKind::Key: return *wk_;
      case WeightKind::Value: return *wv_;
      case WeightKind::SelfOutput: return *wso_;
      default:
        panic("MultiHeadAttention::linear: not an attention tensor");
    }
}

std::vector<Parameter *>
MultiHeadAttention::parameters()
{
    std::vector<Parameter *> ps;
    for (Linear *l : {wq_.get(), wk_.get(), wv_.get(), wso_.get()})
        for (Parameter *p : l->parameters())
            ps.push_back(p);
    return ps;
}

int64_t
MultiHeadAttention::paramCount() const
{
    return wq_->paramCount() + wk_->paramCount() + wv_->paramCount()
           + wso_->paramCount();
}

void
MultiHeadAttention::clearCache()
{
    cachedQ_ = Tensor();
    cachedK_ = Tensor();
    cachedV_ = Tensor();
    cachedProbs_ = Tensor();
    for (Linear *l : {wq_.get(), wk_.get(), wv_.get(), wso_.get()})
        l->clearCache();
}

} // namespace lrd
