/**
 * @file
 * Normalization layers: RMSNorm (Llama-style) and LayerNorm
 * (BERT-style), each with forward and manual backward passes.
 */

#ifndef LRD_MODEL_NORMS_H
#define LRD_MODEL_NORMS_H

#include <string>
#include <vector>

#include "model/parameter.h"
#include "tensor/tensor.h"

namespace lrd {

/** Root-mean-square normalization with learned scale (no bias). */
class RmsNorm
{
  public:
    RmsNorm(int64_t dim, const std::string &name);

    /** x of shape (n, dim) -> same shape. */
    Tensor forward(const Tensor &x);
    Tensor backward(const Tensor &dy);

    std::vector<Parameter *> parameters() { return {&w_}; }
    void clearCache();

  private:
    int64_t dim_;
    Parameter w_;
    Tensor cachedX_;
    std::vector<float> cachedInvRms_;
    static constexpr float kEps = 1e-5F;
};

/** Standard LayerNorm with learned scale and bias. */
class LayerNorm
{
  public:
    LayerNorm(int64_t dim, const std::string &name);

    /** x of shape (n, dim) -> same shape. */
    Tensor forward(const Tensor &x);
    Tensor backward(const Tensor &dy);

    std::vector<Parameter *> parameters() { return {&w_, &b_}; }
    void clearCache();

  private:
    int64_t dim_;
    Parameter w_;
    Parameter b_;
    Tensor cachedXhat_;
    std::vector<float> cachedInvStd_;
    static constexpr float kEps = 1e-5F;
};

} // namespace lrd

#endif // LRD_MODEL_NORMS_H
