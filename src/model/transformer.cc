#include "transformer.h"

#include <cmath>
#include <limits>
#include <tuple>

#include "model/train_mode.h"
#include "robust/fault.h"
#include "robust/recovery.h"
#include "robust/signal.h"
#include "tensor/ops.h"
#include "util/cache.h"
#include "util/logging.h"

namespace lrd {

namespace {

/**
 * Layer-boundary guard: report the first non-finite activation with
 * the layer that produced it. The "model.block" nan fault poisons one
 * element first, so the guard path itself is exercisable in tests.
 */
void
guardBlockOutput(Tensor &h, int64_t layerIdx)
{
    if (faultAt("model.block", FaultKind::Nan) && h.size() > 0)
        h[0] = std::numeric_limits<float>::quiet_NaN();
    pollCancelFault("model.block");
    const int64_t bad = firstNonFinite(h.data(), h.size());
    if (bad >= 0)
        reportNonFinite("model.block", layerIdx, bad);
}

} // namespace

TransformerBlock::TransformerBlock(const ModelConfig &cfg, int64_t layerIdx,
                                   Rng &rng)
    : arch_(cfg.arch)
{
    const std::string base = strCat("layer", layerIdx, ".");
    if (arch_ == Arch::LlamaStyle) {
        rms1_ = std::make_unique<RmsNorm>(cfg.dModel, base + "rms1");
        rms2_ = std::make_unique<RmsNorm>(cfg.dModel, base + "rms2");
    } else {
        ln1_ = std::make_unique<LayerNorm>(cfg.dModel, base + "ln1");
        ln2_ = std::make_unique<LayerNorm>(cfg.dModel, base + "ln2");
    }
    attn_ = std::make_unique<MultiHeadAttention>(cfg, layerIdx, rng);
    mlp_ = std::make_unique<Mlp>(cfg, layerIdx, rng);
}

Tensor
TransformerBlock::forward(const Tensor &x)
{
    if (arch_ == Arch::LlamaStyle) {
        // Pre-norm: x + attn(rms1(x)), then + mlp(rms2(.)).
        Tensor a = add(x, attn_->forward(rms1_->forward(x)));
        return add(a, mlp_->forward(rms2_->forward(a)));
    }
    // Post-norm: ln1(x + attn(x)), then ln2(a + mlp(a)).
    Tensor a = ln1_->forward(add(x, attn_->forward(x)));
    return ln2_->forward(add(a, mlp_->forward(a)));
}

Tensor
TransformerBlock::backward(const Tensor &dy)
{
    if (arch_ == Arch::LlamaStyle) {
        Tensor da = dy;
        axpy(da, 1.0F, rms2_->backward(mlp_->backward(dy)));
        Tensor dx = da;
        axpy(dx, 1.0F, rms1_->backward(attn_->backward(da)));
        return dx;
    }
    Tensor dIn2 = ln2_->backward(dy);
    Tensor da = dIn2;
    axpy(da, 1.0F, mlp_->backward(dIn2));
    Tensor dIn1 = ln1_->backward(da);
    Tensor dx = dIn1;
    axpy(dx, 1.0F, attn_->backward(dIn1));
    return dx;
}

Tensor
TransformerBlock::forwardCached(const Tensor &x, KvCache &cache)
{
    require(arch_ == Arch::LlamaStyle,
            "TransformerBlock::forwardCached: KV cache is decoder-only");
    Tensor a = add(x, attn_->forwardCached(rms1_->forward(x), cache));
    return add(a, mlp_->forward(rms2_->forward(a)));
}

Linear &
TransformerBlock::linear(WeightKind kind)
{
    switch (kind) {
      case WeightKind::Query:
      case WeightKind::Key:
      case WeightKind::Value:
      case WeightKind::SelfOutput:
        return attn_->linear(kind);
      default:
        return mlp_->linear(kind);
    }
}

std::vector<Parameter *>
TransformerBlock::parameters()
{
    std::vector<Parameter *> ps;
    auto append = [&](std::vector<Parameter *> more) {
        ps.insert(ps.end(), more.begin(), more.end());
    };
    if (arch_ == Arch::LlamaStyle) {
        append(rms1_->parameters());
        append(rms2_->parameters());
    } else {
        append(ln1_->parameters());
        append(ln2_->parameters());
    }
    append(attn_->parameters());
    append(mlp_->parameters());
    return ps;
}

int64_t
TransformerBlock::paramCount() const
{
    int64_t n = attn_->paramCount() + mlp_->paramCount();
    if (arch_ == Arch::LlamaStyle)
        n += 2 * rms1_->parameters()[0]->size();
    else
        n += 2
             * (ln1_->parameters()[0]->size()
                + ln1_->parameters()[1]->size());
    return n;
}

void
TransformerBlock::clearCache()
{
    if (rms1_)
        rms1_->clearCache();
    if (rms2_)
        rms2_->clearCache();
    if (ln1_)
        ln1_->clearCache();
    if (ln2_)
        ln2_->clearCache();
    attn_->clearCache();
    mlp_->clearCache();
}

TransformerModel::TransformerModel(const ModelConfig &cfg, uint64_t seed)
    : cfg_(cfg)
{
    cfg_.validate();
    Rng rng(seed);
    embedding_ = std::make_unique<Embedding>(
        cfg_.vocabSize, cfg_.dModel, cfg_.maxSeq,
        cfg_.arch == Arch::BertStyle, "emb", rng);
    blocks_.reserve(static_cast<size_t>(cfg_.nLayers));
    for (int64_t i = 0; i < cfg_.nLayers; ++i)
        blocks_.push_back(std::make_unique<TransformerBlock>(cfg_, i, rng));
    if (cfg_.arch == Arch::LlamaStyle)
        finalNorm_ = std::make_unique<RmsNorm>(cfg_.dModel, "final_norm");
    lmHead_ = std::make_unique<Linear>(cfg_.vocabSize, cfg_.dModel, false,
                                       "lm_head", rng);
}

Tensor
TransformerModel::forward(const TokenSeq &tokens)
{
    require(static_cast<int64_t>(tokens.size()) <= cfg_.maxSeq,
            strCat("TransformerModel::forward: sequence length ",
                   tokens.size(), " exceeds maxSeq ", cfg_.maxSeq));
    Tensor h = embedding_->forward(tokens);
    for (size_t l = 0; l < blocks_.size(); ++l) {
        h = blocks_[l]->forward(h);
        guardBlockOutput(h, static_cast<int64_t>(l));
    }
    if (finalNorm_)
        h = finalNorm_->forward(h);
    return lmHead_->forward(h);
}

namespace {

/**
 * Cross-entropy on logits rows with target >= 0; fills dLogits with
 * (softmax - onehot) / numSupervised when dLogits != nullptr.
 */
double
crossEntropy(const Tensor &logits, const std::vector<int> &targets,
             Tensor *dLogits)
{
    const int64_t t = logits.dim(0);
    const int64_t v = logits.dim(1);
    require(static_cast<int64_t>(targets.size()) == t,
            "crossEntropy: target length mismatch");
    int64_t supervised = 0;
    for (int tgt : targets)
        if (tgt >= 0)
            ++supervised;
    require(supervised > 0, "crossEntropy: no supervised positions");

    Tensor logProbs = logSoftmaxLastDim(logits);
    double loss = 0.0;
    if (dLogits != nullptr)
        *dLogits = Tensor(logits.shape());
    const double invN = 1.0 / static_cast<double>(supervised);
    for (int64_t i = 0; i < t; ++i) {
        const int tgt = targets[static_cast<size_t>(i)];
        if (tgt < 0)
            continue;
        require(tgt < v, "crossEntropy: target out of vocab");
        loss -= logProbs(i, tgt);
        if (dLogits != nullptr) {
            const float *lp = logProbs.data() + i * v;
            float *dl = dLogits->data() + i * v;
            for (int64_t j = 0; j < v; ++j)
                dl[j] = static_cast<float>(std::exp(lp[j]) * invN);
            dl[tgt] -= static_cast<float>(invN);
        }
    }
    return loss * invN;
}

} // namespace

double
TransformerModel::lossAndGrad(const TokenSeq &tokens,
                              const std::vector<int> &targets)
{
    // Keep inference-only forward specializations (the fused
    // factorized path) disabled: backward() needs the cached
    // intermediates the fused path skips.
    TrainingModeScope trainScope;
    Tensor logits = forward(tokens);
    Tensor dLogits;
    const double loss = crossEntropy(logits, targets, &dLogits);

    Tensor dh = lmHead_->backward(dLogits);
    if (finalNorm_)
        dh = finalNorm_->backward(dh);
    for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it)
        dh = (*it)->backward(dh);
    embedding_->backward(dh);
    return loss;
}

double
TransformerModel::loss(const TokenSeq &tokens,
                       const std::vector<int> &targets)
{
    Tensor logits = forward(tokens);
    return crossEntropy(logits, targets, nullptr);
}

std::vector<Parameter *>
TransformerModel::parameters()
{
    std::vector<Parameter *> ps;
    auto append = [&](std::vector<Parameter *> more) {
        ps.insert(ps.end(), more.begin(), more.end());
    };
    append(embedding_->parameters());
    for (auto &b : blocks_)
        append(b->parameters());
    if (finalNorm_)
        append(finalNorm_->parameters());
    append(lmHead_->parameters());
    return ps;
}

void
TransformerModel::zeroGrad()
{
    for (Parameter *p : parameters())
        p->zeroGrad();
}

Linear &
TransformerModel::linear(int64_t layer, WeightKind kind)
{
    require(layer >= 0 && layer < numLayers(),
            strCat("TransformerModel::linear: layer ", layer,
                   " out of range"));
    return blocks_[static_cast<size_t>(layer)]->linear(kind);
}

Status
TransformerModel::applyTucker(int64_t layer, WeightKind kind,
                              int64_t prunedRank)
{
    return linear(layer, kind).factorize(prunedRank);
}

int64_t
TransformerModel::paramCount() const
{
    int64_t n = 0;
    for (Parameter *p :
         const_cast<TransformerModel *>(this)->parameters())
        n += p->size();
    return n;
}

bool
TransformerModel::anyFactorized() const
{
    auto *self = const_cast<TransformerModel *>(this);
    for (int64_t l = 0; l < numLayers(); ++l)
        for (WeightKind k : decomposableKinds(cfg_.arch))
            if (self->linear(l, k).isFactorized())
                return true;
    return false;
}

std::vector<uint8_t>
TransformerModel::serialize() const
{
    auto *self = const_cast<TransformerModel *>(this);
    ByteWriter w;
    w.putString("lrd-model-v3");
    w.putString(cfg_.name);
    w.putU32(cfg_.arch == Arch::LlamaStyle ? 0 : 1);
    w.putU64(static_cast<uint64_t>(cfg_.vocabSize));
    w.putU64(static_cast<uint64_t>(cfg_.dModel));
    w.putU64(static_cast<uint64_t>(cfg_.nLayers));
    w.putU64(static_cast<uint64_t>(cfg_.nHeads));
    w.putU64(static_cast<uint64_t>(cfg_.nKvHeads));
    w.putU64(static_cast<uint64_t>(cfg_.dFf));
    w.putU64(static_cast<uint64_t>(cfg_.maxSeq));

    // Factorization manifest: which (layer, tensor) pairs are stored
    // as Tucker factors, and at what rank.
    std::vector<std::tuple<uint64_t, uint32_t, uint64_t>> manifest;
    for (int64_t l = 0; l < numLayers(); ++l) {
        for (WeightKind kind : decomposableKinds(cfg_.arch)) {
            const Linear &lin = self->linear(l, kind);
            if (lin.isFactorized())
                manifest.emplace_back(static_cast<uint64_t>(l),
                                      static_cast<uint32_t>(kind),
                                      static_cast<uint64_t>(
                                          lin.prunedRank()));
        }
    }
    w.putU64(manifest.size());
    for (const auto &[layer, kind, rank] : manifest) {
        w.putU64(layer);
        w.putU32(kind);
        w.putU64(rank);
    }

    auto params = self->parameters();
    w.putU64(params.size());
    for (Parameter *p : params) {
        w.putString(p->name);
        w.putFloats(p->value.storage());
    }
    return w.bytes();
}

TransformerModel
TransformerModel::deserialize(const std::vector<uint8_t> &bytes)
{
    ByteReader r(bytes);
    const std::string magic = r.getString();
    require(magic == "lrd-model-v1" || magic == "lrd-model-v2"
                || magic == "lrd-model-v3",
            "TransformerModel::deserialize: bad magic");
    ModelConfig cfg;
    cfg.name = r.getString();
    cfg.arch = r.getU32() == 0 ? Arch::LlamaStyle : Arch::BertStyle;
    cfg.vocabSize = static_cast<int64_t>(r.getU64());
    cfg.dModel = static_cast<int64_t>(r.getU64());
    cfg.nLayers = static_cast<int64_t>(r.getU64());
    cfg.nHeads = static_cast<int64_t>(r.getU64());
    if (magic == "lrd-model-v3")
        cfg.nKvHeads = static_cast<int64_t>(r.getU64());
    cfg.dFf = static_cast<int64_t>(r.getU64());
    cfg.maxSeq = static_cast<int64_t>(r.getU64());

    TransformerModel model(cfg);
    if (magic != "lrd-model-v1") {
        const uint64_t n = r.getU64();
        for (uint64_t i = 0; i < n; ++i) {
            const auto layer = static_cast<int64_t>(r.getU64());
            const auto kind = static_cast<WeightKind>(r.getU32());
            const auto rank = static_cast<int64_t>(r.getU64());
            model.linear(layer, kind).installFactorShape(rank);
        }
    }
    auto params = model.parameters();
    const uint64_t n = r.getU64();
    require(n == params.size(),
            strCat("TransformerModel::deserialize: parameter count ",
                   n, " != expected ", params.size()));
    for (Parameter *p : params) {
        const std::string name = r.getString();
        require(name == p->name,
                strCat("TransformerModel::deserialize: expected ", p->name,
                       ", found ", name));
        std::vector<float> data = r.getFloats();
        require(static_cast<int64_t>(data.size()) == p->value.size(),
                "TransformerModel::deserialize: size mismatch for " + name);
        p->value.storage() = std::move(data);
    }
    return model;
}

void
TransformerModel::clearCache()
{
    for (auto &b : blocks_)
        b->clearCache();
    if (finalNorm_)
        finalNorm_->clearCache();
    lmHead_->clearCache();
}

InferenceSession::InferenceSession(TransformerModel &model) : model_(&model)
{
    require(model.config().arch == Arch::LlamaStyle,
            "InferenceSession: KV-cache decoding is decoder-only");
    reset();
}

void
InferenceSession::reset()
{
    caches_.assign(static_cast<size_t>(model_->numLayers()),
                   KvCache(model_->config().maxSeq,
                           model_->config().kvDim()));
}

Tensor
InferenceSession::append(const TokenSeq &tokens)
{
    require(!tokens.empty(), "InferenceSession::append: empty input");
    const int64_t start = length();
    require(start + static_cast<int64_t>(tokens.size())
                <= model_->config().maxSeq,
            "InferenceSession::append: exceeds maxSeq");
    Tensor h = model_->embedding_->forward(tokens, start);
    for (int64_t l = 0; l < model_->numLayers(); ++l) {
        h = model_->blocks_[static_cast<size_t>(l)]->forwardCached(
            h, caches_[static_cast<size_t>(l)]);
        guardBlockOutput(h, l);
    }
    h = model_->finalNorm_->forward(h);
    Tensor logits = model_->lmHead_->forward(h);
    // Return the last row only.
    const int64_t v = logits.dim(1);
    Tensor last({v});
    const float *src = logits.data() + (logits.dim(0) - 1) * v;
    for (int64_t j = 0; j < v; ++j)
        last[j] = src[j];
    return last;
}

double
scoreContinuation(TransformerModel &model, const TokenSeq &context,
                  const TokenSeq &continuation)
{
    require(!context.empty() && !continuation.empty(),
            "scoreContinuation: context and continuation must be "
            "non-empty");
    InferenceSession session(model);
    Tensor logits = session.append(context);
    double total = 0.0;
    for (size_t i = 0; i < continuation.size(); ++i) {
        Tensor logProbs = logSoftmaxLastDim(logits);
        total += logProbs[continuation[i]];
        if (i + 1 < continuation.size())
            logits = session.append({continuation[i]});
    }
    return total;
}

TokenSeq
greedyGenerate(TransformerModel &model, const TokenSeq &prompt, int maxNew,
               int stopToken)
{
    require(!prompt.empty(), "greedyGenerate: empty prompt");
    InferenceSession session(model);
    Tensor logits = session.append(prompt);
    TokenSeq out;
    const int64_t maxSeq = model.config().maxSeq;
    for (int i = 0; i < maxNew && session.length() < maxSeq; ++i) {
        int best = 0;
        for (int64_t j = 1; j < logits.dim(0); ++j)
            if (logits[j] > logits[best])
                best = static_cast<int>(j);
        if (best == stopToken)
            break;
        out.push_back(best);
        if (session.length() + 1 <= maxSeq && i + 1 < maxNew)
            logits = session.append({best});
    }
    return out;
}

} // namespace lrd
