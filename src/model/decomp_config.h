/**
 * @file
 * The decomposition configuration gamma of Definition 4: the set of
 * decomposed layers (Decomp_Layers), the set of decomposed tensors
 * per layer (Decomp_Tensors), and the pruned ranks PR.
 *
 * Following the paper's Section 3.1, schemes are homogeneous by
 * default (the same tensors and the same pruned rank in every
 * decomposed layer), with an optional per-(layer, tensor) rank map
 * for the general Definition 3 form.
 */

#ifndef LRD_MODEL_DECOMP_CONFIG_H
#define LRD_MODEL_DECOMP_CONFIG_H

#include <map>
#include <string>
#include <vector>

#include "model/config.h"
#include "model/transformer.h"

namespace lrd {

/** One (layer, tensor, prunedRank) element of PR(m) (Definition 3). */
struct PrunedRankEntry
{
    int layer = 0;
    WeightKind kind = WeightKind::Query;
    int64_t rank = 1;
};

/** A low-rank decomposition configuration gamma (Definition 4). */
struct DecompConfig
{
    /** Decomposed layer indices (0-based), sorted, unique. */
    std::vector<int> layers;
    /** Decomposed tensor kinds within each decomposed layer. */
    std::vector<WeightKind> tensors;
    /** Uniform pruned rank applied to every decomposed tensor. */
    int64_t prunedRank = 1;
    /**
     * Optional overrides for the general (non-homogeneous) form:
     * (layer, kind) -> rank. Entries must still reference decomposed
     * layers/tensors (Proposition 3.1).
     */
    std::map<std::pair<int, int>, int64_t> rankOverrides;

    /** The identity configuration (no decomposition). */
    static DecompConfig identity();

    /** Homogeneous config: all decomposable tensors, given layers. */
    static DecompConfig allTensors(const ModelConfig &cfg,
                                   std::vector<int> layers,
                                   int64_t prunedRank = 1);

    /** Homogeneous config: one tensor kind across given layers. */
    static DecompConfig oneTensor(WeightKind kind, std::vector<int> layers,
                                  int64_t prunedRank = 1);

    bool empty() const { return layers.empty() || tensors.empty(); }

    /** The PR(m) set expanded per Definition 3. */
    std::vector<PrunedRankEntry> prunedRanks() const;

    /** Effective rank for one (layer, kind) pair. */
    int64_t rankFor(int layer, WeightKind kind) const;

    /**
     * Proposition 3.1 validity against a concrete model: layer and
     * tensor indices in range, ranks within [1, rank(l, k)], and
     * rank-override keys covered by the layer/tensor sets.
     * @param why Optional out-parameter describing the violation.
     */
    bool valid(const ModelConfig &cfg, std::string *why = nullptr) const;

    /** Parameters of the decomposed tensors before decomposition. */
    int64_t paramsBefore(const ModelConfig &cfg) const;
    /** Parameters of the decomposed tensors after decomposition. */
    int64_t paramsAfter(const ModelConfig &cfg) const;
    /**
     * Fraction of *total model* parameters removed (the paper's
     * "parameter reduction" x-axis).
     */
    double parameterReduction(const ModelConfig &cfg) const;

    /**
     * Factorize the selected weights of a live model in place. An
     * invalid configuration is fatal; a tensor whose SVD fails to
     * converge is resolved by the recovery policy — under degrade the
     * tensor stays dense and the first failure's status is returned
     * (the model remains consistent and usable).
     */
    Status applyTo(TransformerModel &model) const;

    /** "layers={3,18,32} tensors=all pr=1" style summary. */
    std::string describe() const;
};

} // namespace lrd

#endif // LRD_MODEL_DECOMP_CONFIG_H
