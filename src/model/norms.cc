#include "norms.h"

#include <cmath>

#include "util/logging.h"

namespace lrd {

RmsNorm::RmsNorm(int64_t dim, const std::string &name) : dim_(dim)
{
    w_ = Parameter(name + ".w", Tensor::ones({dim}));
}

Tensor
RmsNorm::forward(const Tensor &x)
{
    require(x.rank() == 2 && x.dim(1) == dim_,
            strCat("RmsNorm::forward: bad input ",
                   shapeToString(x.shape())));
    cachedX_ = x;
    const int64_t n = x.dim(0);
    cachedInvRms_.resize(static_cast<size_t>(n));
    Tensor y(x.shape());
    for (int64_t i = 0; i < n; ++i) {
        const float *row = x.data() + i * dim_;
        double ms = 0.0;
        for (int64_t j = 0; j < dim_; ++j)
            ms += static_cast<double>(row[j]) * row[j];
        const float inv =
            1.0F /
            std::sqrt(static_cast<float>(ms / static_cast<double>(dim_)) +
                      kEps);
        cachedInvRms_[static_cast<size_t>(i)] = inv;
        float *out = y.data() + i * dim_;
        for (int64_t j = 0; j < dim_; ++j)
            out[j] = row[j] * inv * w_.value[j];
    }
    return y;
}

Tensor
RmsNorm::backward(const Tensor &dy)
{
    require(dy.shape() == cachedX_.shape(),
            "RmsNorm::backward: no matching forward cached");
    const int64_t n = dy.dim(0);
    Tensor dx(dy.shape());
    for (int64_t i = 0; i < n; ++i) {
        const float *xrow = cachedX_.data() + i * dim_;
        const float *dyrow = dy.data() + i * dim_;
        float *dxrow = dx.data() + i * dim_;
        const float s = cachedInvRms_[static_cast<size_t>(i)];
        double inner = 0.0; // sum_k dy_k w_k x_k
        for (int64_t j = 0; j < dim_; ++j) {
            inner += static_cast<double>(dyrow[j]) * w_.value[j] * xrow[j];
            w_.grad[j] += dyrow[j] * xrow[j] * s;
        }
        const float c =
            static_cast<float>(inner) * s * s * s / static_cast<float>(dim_);
        for (int64_t j = 0; j < dim_; ++j)
            dxrow[j] = dyrow[j] * w_.value[j] * s - xrow[j] * c;
    }
    return dx;
}

void
RmsNorm::clearCache()
{
    cachedX_ = Tensor();
    cachedInvRms_.clear();
}

LayerNorm::LayerNorm(int64_t dim, const std::string &name) : dim_(dim)
{
    w_ = Parameter(name + ".w", Tensor::ones({dim}));
    b_ = Parameter(name + ".b", Tensor({dim}));
}

Tensor
LayerNorm::forward(const Tensor &x)
{
    require(x.rank() == 2 && x.dim(1) == dim_,
            strCat("LayerNorm::forward: bad input ",
                   shapeToString(x.shape())));
    const int64_t n = x.dim(0);
    cachedXhat_ = Tensor(x.shape());
    cachedInvStd_.resize(static_cast<size_t>(n));
    Tensor y(x.shape());
    for (int64_t i = 0; i < n; ++i) {
        const float *row = x.data() + i * dim_;
        double mean = 0.0;
        for (int64_t j = 0; j < dim_; ++j)
            mean += row[j];
        mean /= static_cast<double>(dim_);
        double var = 0.0;
        for (int64_t j = 0; j < dim_; ++j) {
            const double d = row[j] - mean;
            var += d * d;
        }
        var /= static_cast<double>(dim_);
        const float inv = 1.0F / std::sqrt(static_cast<float>(var) + kEps);
        cachedInvStd_[static_cast<size_t>(i)] = inv;
        float *xhat = cachedXhat_.data() + i * dim_;
        float *out = y.data() + i * dim_;
        for (int64_t j = 0; j < dim_; ++j) {
            xhat[j] = (row[j] - static_cast<float>(mean)) * inv;
            out[j] = xhat[j] * w_.value[j] + b_.value[j];
        }
    }
    return y;
}

Tensor
LayerNorm::backward(const Tensor &dy)
{
    require(dy.shape() == cachedXhat_.shape(),
            "LayerNorm::backward: no matching forward cached");
    const int64_t n = dy.dim(0);
    Tensor dx(dy.shape());
    for (int64_t i = 0; i < n; ++i) {
        const float *dyrow = dy.data() + i * dim_;
        const float *xhat = cachedXhat_.data() + i * dim_;
        float *dxrow = dx.data() + i * dim_;
        const float inv = cachedInvStd_[static_cast<size_t>(i)];
        double meanDxhat = 0.0, meanDxhatXhat = 0.0;
        for (int64_t j = 0; j < dim_; ++j) {
            const double dxhat = static_cast<double>(dyrow[j]) * w_.value[j];
            meanDxhat += dxhat;
            meanDxhatXhat += dxhat * xhat[j];
            w_.grad[j] += dyrow[j] * xhat[j];
            b_.grad[j] += dyrow[j];
        }
        meanDxhat /= static_cast<double>(dim_);
        meanDxhatXhat /= static_cast<double>(dim_);
        for (int64_t j = 0; j < dim_; ++j) {
            const double dxhat = static_cast<double>(dyrow[j]) * w_.value[j];
            dxrow[j] = static_cast<float>(
                inv * (dxhat - meanDxhat - xhat[j] * meanDxhatXhat));
        }
    }
    return dx;
}

void
LayerNorm::clearCache()
{
    cachedXhat_ = Tensor();
    cachedInvStd_.clear();
}

} // namespace lrd
