#include "decomp_config.h"

#include <algorithm>
#include <sstream>

#include "decomp/tucker.h"
#include "util/logging.h"

namespace lrd {

DecompConfig
DecompConfig::identity()
{
    return DecompConfig{};
}

DecompConfig
DecompConfig::allTensors(const ModelConfig &cfg, std::vector<int> layers,
                         int64_t prunedRank)
{
    DecompConfig c;
    c.layers = std::move(layers);
    std::sort(c.layers.begin(), c.layers.end());
    c.tensors = decomposableKinds(cfg.arch);
    c.prunedRank = prunedRank;
    return c;
}

DecompConfig
DecompConfig::oneTensor(WeightKind kind, std::vector<int> layers,
                        int64_t prunedRank)
{
    DecompConfig c;
    c.layers = std::move(layers);
    std::sort(c.layers.begin(), c.layers.end());
    c.tensors = {kind};
    c.prunedRank = prunedRank;
    return c;
}

std::vector<PrunedRankEntry>
DecompConfig::prunedRanks() const
{
    std::vector<PrunedRankEntry> out;
    for (int l : layers)
        for (WeightKind k : tensors)
            out.push_back({l, k, rankFor(l, k)});
    return out;
}

int64_t
DecompConfig::rankFor(int layer, WeightKind kind) const
{
    const auto it =
        rankOverrides.find({layer, static_cast<int>(kind)});
    return it != rankOverrides.end() ? it->second : prunedRank;
}

bool
DecompConfig::valid(const ModelConfig &cfg, std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why != nullptr)
            *why = msg;
        return false;
    };
    // Empty layer/tensor sets are only valid together (the identity).
    if (layers.empty() != tensors.empty())
        return fail("layers and tensors must be both empty or both "
                    "non-empty");
    const auto kinds = decomposableKinds(cfg.arch);
    for (int l : layers) {
        if (l < 0 || l >= cfg.nLayers)
            return fail(strCat("layer ", l, " out of range [0, ",
                               cfg.nLayers, ")"));
    }
    if (std::adjacent_find(layers.begin(), layers.end())
        != layers.end())
        return fail("duplicate layer in Decomp_Layers");
    for (WeightKind k : tensors) {
        if (std::find(kinds.begin(), kinds.end(), k) == kinds.end())
            return fail(weightKindName(k)
                        + " is not decomposable in this architecture");
    }
    // Rank bounds: 0 < p <= rank(l, k) = min(dims).
    for (const PrunedRankEntry &e : prunedRanks()) {
        const auto shape = cfg.weightShape(e.kind);
        const int64_t maxRank = std::min(shape[0], shape[1]);
        if (e.rank < 1 || e.rank > maxRank)
            return fail(strCat("rank ", e.rank, " for ",
                               weightKindName(e.kind), " in layer ",
                               e.layer, " outside [1, ", maxRank, "]"));
    }
    // Proposition 3.1: every override must reference a decomposed
    // (layer, tensor) pair.
    for (const auto &[key, rank] : rankOverrides) {
        const auto [l, kInt] = key;
        (void)rank;
        if (std::find(layers.begin(), layers.end(), l) == layers.end())
            return fail(strCat("rank override for layer ", l,
                               " which is not decomposed"));
        const auto kind = static_cast<WeightKind>(kInt);
        if (std::find(tensors.begin(), tensors.end(), kind)
            == tensors.end())
            return fail("rank override for tensor "
                        + weightKindName(kind)
                        + " which is not decomposed");
    }
    return true;
}

int64_t
DecompConfig::paramsBefore(const ModelConfig &cfg) const
{
    int64_t n = 0;
    for (const PrunedRankEntry &e : prunedRanks()) {
        const auto shape = cfg.weightShape(e.kind);
        n += denseParams(shape[0], shape[1]);
    }
    return n;
}

int64_t
DecompConfig::paramsAfter(const ModelConfig &cfg) const
{
    int64_t n = 0;
    for (const PrunedRankEntry &e : prunedRanks()) {
        const auto shape = cfg.weightShape(e.kind);
        n += decomposedParams(shape[0], shape[1], e.rank);
    }
    return n;
}

double
DecompConfig::parameterReduction(const ModelConfig &cfg) const
{
    const int64_t removed = paramsBefore(cfg) - paramsAfter(cfg);
    return static_cast<double>(removed)
           / static_cast<double>(cfg.totalParams());
}

Status
DecompConfig::applyTo(TransformerModel &model) const
{
    std::string why;
    require(valid(model.config(), &why),
            "DecompConfig::applyTo: invalid configuration: " + why);
    Status first;
    int64_t numFailed = 0;
    for (const PrunedRankEntry &e : prunedRanks()) {
        Status s = model.applyTucker(e.layer, e.kind, e.rank);
        if (!s.ok()) {
            ++numFailed;
            if (first.ok())
                first = std::move(s);
        }
    }
    if (numFailed > 0)
        return Status(first.code(), "decomp.apply",
                      strCat(numFailed, " of ", prunedRanks().size(),
                             " tensors left dense; first: ",
                             first.toString()));
    return Status();
}

std::string
DecompConfig::describe() const
{
    if (empty())
        return "identity (no decomposition)";
    std::ostringstream oss;
    oss << "layers={";
    for (size_t i = 0; i < layers.size(); ++i)
        oss << (i ? "," : "") << layers[i];
    oss << "} tensors={";
    for (size_t i = 0; i < tensors.size(); ++i)
        oss << (i ? "," : "") << weightKindName(tensors[i]);
    oss << "} pr=" << prunedRank;
    if (!rankOverrides.empty())
        oss << " (+" << rankOverrides.size() << " overrides)";
    return oss.str();
}

} // namespace lrd
