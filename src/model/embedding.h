/**
 * @file
 * Token (and optional learned positional) embedding with scatter-add
 * backward.
 */

#ifndef LRD_MODEL_EMBEDDING_H
#define LRD_MODEL_EMBEDDING_H

#include <vector>

#include "model/parameter.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace lrd {

/** Token ids are plain ints; sequences are vectors of them. */
using TokenSeq = std::vector<int>;

/** Embedding table; BertStyle models add learned positions. */
class Embedding
{
  public:
    /**
     * @param vocab    Vocabulary size.
     * @param dim      Embedding width.
     * @param maxSeq   Maximum sequence length (for positions).
     * @param usePositions Add a learned positional table (BERT).
     */
    Embedding(int64_t vocab, int64_t dim, int64_t maxSeq, bool usePositions,
              const std::string &name, Rng &rng);

    /**
     * Embed tokens[0..n) at absolute positions startPos..startPos+n.
     * @return (n, dim) activations.
     */
    Tensor forward(const TokenSeq &tokens, int64_t startPos = 0);

    /** Scatter-add gradients for the last forward call. */
    void backward(const Tensor &dy);

    std::vector<Parameter *> parameters();

    int64_t vocab() const { return vocab_; }

  private:
    int64_t vocab_;
    int64_t dim_;
    bool usePositions_;
    Parameter tok_;
    Parameter pos_;
    TokenSeq cachedTokens_;
    int64_t cachedStart_ = 0;
};

} // namespace lrd

#endif // LRD_MODEL_EMBEDDING_H
