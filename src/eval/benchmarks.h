/**
 * @file
 * The seven benchmark generators standing in for the paper's
 * evaluation suites (Table 3). Each generator grades difficulty via
 * its construction:
 *
 *  - ArcEasy:       head-entity fact QA with cross-type distractors
 *                   (solvable from type knowledge alone -> high acc).
 *  - ArcChallenge:  fact QA with same-type distractors (needs
 *                   entity-specific knowledge).
 *  - HellaSwag:     pattern-completion with 2-token continuations.
 *  - Mmlu:          mixed-domain QA over *uniformly* sampled entities
 *                   including the Zipf tail (weakly learned -> low
 *                   acc) plus arithmetic items.
 *  - TruthfulQa:    true color vs widely-circulated myth color: the
 *                   adversarial-frequency probe; small models prefer
 *                   the myth, so accuracy can sit below chance and
 *                   *rise* under heavy compression (the paper's
 *                   reverse trend).
 *  - WinoGrande:    2-way pronoun agreement.
 *  - Gsm8k:         few-shot addition, greedy-decoded, exact match.
 */

#ifndef LRD_EVAL_BENCHMARKS_H
#define LRD_EVAL_BENCHMARKS_H

#include <vector>

#include "eval/task.h"
#include "train/world.h"

namespace lrd {

/** The benchmark suite (paper Table 3). */
enum class BenchmarkKind {
    ArcEasy,
    ArcChallenge,
    HellaSwag,
    Mmlu,
    TruthfulQa,
    WinoGrande,
    Gsm8k,
};

/** All benchmarks in paper order. */
const std::vector<BenchmarkKind> &allBenchmarks();

/** Display name ("ARC Easy", ...). */
std::string benchmarkName(BenchmarkKind kind);

/** Number of choices per item (2 for WinoGrande, else 4; 0 for the
 *  generation-scored Gsm8k). */
int benchmarkNumChoices(BenchmarkKind kind);

/**
 * Generate `n` multiple-choice items. @pre kind != Gsm8k.
 * Deterministic in (kind, world, seed).
 */
std::vector<McTask> makeMcTasks(BenchmarkKind kind, const World &world,
                                int n, uint64_t seed);

/** Generate `n` few-shot GSM8K-style generation items. */
std::vector<GenTask> makeGsm8kTasks(const World &world, int n,
                                    uint64_t seed);

} // namespace lrd

#endif // LRD_EVAL_BENCHMARKS_H
