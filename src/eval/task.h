/**
 * @file
 * Benchmark task representations: multiple-choice tasks scored by
 * log-likelihood (the lm-evaluation-harness method the paper uses)
 * and generation tasks scored by exact match (GSM8K-style).
 */

#ifndef LRD_EVAL_TASK_H
#define LRD_EVAL_TASK_H

#include <string>
#include <vector>

#include "model/embedding.h"

namespace lrd {

/** One multiple-choice item. */
struct McTask
{
    TokenSeq context;                ///< Prompt (starts with <bos>).
    std::vector<TokenSeq> choices;   ///< Candidate continuations.
    int gold = 0;                    ///< Index of the correct choice.
};

/** One generation item (exact-match scored). */
struct GenTask
{
    TokenSeq prompt;   ///< Few-shot prompt (starts with <bos>).
    TokenSeq expected; ///< Tokens the model must emit verbatim.
};

/** Accuracy summary for one benchmark run. */
struct EvalResult
{
    double accuracy = 0.0; ///< Fraction correct in [0, 1].
    int numTasks = 0;
    int numCorrect = 0;
    /** Items that faulted and were degraded (scored as incorrect). */
    int numFailed = 0;
};

} // namespace lrd

#endif // LRD_EVAL_TASK_H
