/**
 * @file
 * Benchmark task representations: multiple-choice tasks scored by
 * log-likelihood (the lm-evaluation-harness method the paper uses)
 * and generation tasks scored by exact match (GSM8K-style).
 */

#ifndef LRD_EVAL_TASK_H
#define LRD_EVAL_TASK_H

#include <string>
#include <vector>

#include "model/embedding.h"
#include "util/status.h"

namespace lrd {

/** One multiple-choice item. */
struct McTask
{
    TokenSeq context;                ///< Prompt (starts with <bos>).
    std::vector<TokenSeq> choices;   ///< Candidate continuations.
    int gold = 0;                    ///< Index of the correct choice.
};

/** One generation item (exact-match scored). */
struct GenTask
{
    TokenSeq prompt;   ///< Few-shot prompt (starts with <bos>).
    TokenSeq expected; ///< Tokens the model must emit verbatim.
};

/** Accuracy summary for one benchmark run. */
struct EvalResult
{
    /** Fraction correct in [0, 1] over the *attempted* items. */
    double accuracy = 0.0;
    int numTasks = 0;
    int numCorrect = 0;
    /** Items that faulted and were degraded (scored as incorrect). */
    int numFailed = 0;
    /** Items never scored: a cancel request or deadline intervened. */
    int numSkipped = 0;
    /** Cancelled/DeadlineExceeded when the run stopped early. */
    Status status;

    /** Whether this result covers only part of the benchmark. */
    bool partial() const { return numSkipped > 0; }
};

} // namespace lrd

#endif // LRD_EVAL_TASK_H
