/**
 * @file
 * Benchmark evaluator. Multiple-choice items are scored by summed
 * log-likelihood of each choice continuation (the lm-evaluation-
 * harness protocol the paper follows); GSM8K-style items are scored
 * by greedy-decode exact match.
 *
 * Decoder (LlamaStyle) models share the context prefix across choices
 * through a copied KV-cache session. Encoder (BertStyle) models are
 * scored by pseudo-log-likelihood: each choice position is masked in
 * turn and the original token's probability read out.
 */

#ifndef LRD_EVAL_EVALUATOR_H
#define LRD_EVAL_EVALUATOR_H

#include <map>

#include "eval/benchmarks.h"
#include "model/transformer.h"

namespace lrd {

/** Evaluation knobs. */
struct EvalOptions
{
    int numTasks = 120;          ///< Items per benchmark.
    uint64_t seed = 777;         ///< Task-generation seed.
    bool lengthNormalize = false; ///< acc_norm-style scoring.
};

/** Runs the benchmark suite against one model. */
class Evaluator
{
  public:
    Evaluator(TransformerModel &model, const World &world,
              EvalOptions opts = {});

    /** Accuracy on one benchmark. */
    EvalResult run(BenchmarkKind kind);

    /** Accuracy on every benchmark (paper Figure 9's panel set). */
    std::map<BenchmarkKind, EvalResult> runAll();

    /** Mean accuracy across all benchmarks (Figures 7 and 8). */
    double aggregateAccuracy();

    /** Which choice a decoder model picks for one item. */
    int pickChoiceCausal(const McTask &task);

    /** Which choice an encoder model picks for one item (PLL). */
    int pickChoiceBert(const McTask &task);

  private:
    EvalResult runMc(BenchmarkKind kind);
    EvalResult runGen();

    /**
     * Score items [0, n) via fn(i, model), fanning out across the
     * global thread pool with one model replica per worker so the
     * result is bitwise independent of the thread count.
     */
    template <class Fn>
    void forEachItemParallel(int64_t n, const Fn &fn);

    TransformerModel &model_;
    const World &world_;
    EvalOptions opts_;
};

} // namespace lrd

#endif // LRD_EVAL_EVALUATOR_H
