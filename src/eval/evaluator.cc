#include "evaluator.h"

#include <cmath>
#include <limits>

#include "tensor/ops.h"
#include "util/logging.h"

namespace lrd {

Evaluator::Evaluator(TransformerModel &model, const World &world,
                     EvalOptions opts)
    : model_(model), world_(world), opts_(opts)
{
    require(opts_.numTasks > 0, "Evaluator: numTasks must be positive");
}

int
Evaluator::pickChoiceCausal(const McTask &task)
{
    InferenceSession base(model_);
    Tensor firstLogits = base.append(task.context);

    double bestScore = -std::numeric_limits<double>::infinity();
    int best = 0;
    for (size_t c = 0; c < task.choices.size(); ++c) {
        const TokenSeq &choice = task.choices[c];
        require(!choice.empty(), "Evaluator: empty choice");
        // Copy the shared-context session so each choice extends its
        // own KV cache.
        InferenceSession session = base;
        Tensor logits = firstLogits;
        double ll = 0.0;
        for (size_t i = 0; i < choice.size(); ++i) {
            Tensor lp = logSoftmaxLastDim(logits);
            ll += lp[choice[i]];
            if (i + 1 < choice.size())
                logits = session.append({choice[i]});
        }
        if (opts_.lengthNormalize)
            ll /= static_cast<double>(choice.size());
        if (ll > bestScore) {
            bestScore = ll;
            best = static_cast<int>(c);
        }
    }
    return best;
}

int
Evaluator::pickChoiceBert(const McTask &task)
{
    double bestScore = -std::numeric_limits<double>::infinity();
    int best = 0;
    for (size_t c = 0; c < task.choices.size(); ++c) {
        const TokenSeq &choice = task.choices[c];
        TokenSeq seq = task.context;
        seq.insert(seq.end(), choice.begin(), choice.end());
        const size_t start = task.context.size();
        double ll = 0.0;
        for (size_t i = 0; i < choice.size(); ++i) {
            TokenSeq masked = seq;
            masked[start + i] = world_.maskToken();
            Tensor logits = model_.forward(masked);
            Tensor lp = logSoftmaxLastDim(logits);
            ll += lp(static_cast<int64_t>(start + i), choice[i]);
        }
        if (opts_.lengthNormalize)
            ll /= static_cast<double>(choice.size());
        if (ll > bestScore) {
            bestScore = ll;
            best = static_cast<int>(c);
        }
    }
    return best;
}

EvalResult
Evaluator::runMc(BenchmarkKind kind)
{
    const auto tasks =
        makeMcTasks(kind, world_, opts_.numTasks, opts_.seed);
    const bool causal = model_.config().arch == Arch::LlamaStyle;
    EvalResult res;
    for (const McTask &task : tasks) {
        const int pick =
            causal ? pickChoiceCausal(task) : pickChoiceBert(task);
        res.numCorrect += pick == task.gold;
        ++res.numTasks;
    }
    res.accuracy = static_cast<double>(res.numCorrect) / res.numTasks;
    model_.clearCache();
    return res;
}

EvalResult
Evaluator::runGen()
{
    const auto tasks = makeGsm8kTasks(world_, opts_.numTasks, opts_.seed);
    EvalResult res;
    const bool causal = model_.config().arch == Arch::LlamaStyle;
    for (const GenTask &task : tasks) {
        bool correct = false;
        if (causal) {
            const TokenSeq out = greedyGenerate(
                model_, task.prompt,
                static_cast<int>(task.expected.size()), /*stopToken=*/-1);
            correct = out == task.expected;
        } else {
            // Encoder models answer by masked-slot prediction.
            TokenSeq seq = task.prompt;
            const size_t slot = seq.size();
            seq.push_back(world_.maskToken());
            Tensor logits = model_.forward(seq);
            int argmax = 0;
            const int64_t v = logits.dim(1);
            for (int64_t j = 1; j < v; ++j)
                if (logits(static_cast<int64_t>(slot), j)
                    > logits(static_cast<int64_t>(slot), argmax))
                    argmax = static_cast<int>(j);
            correct = task.expected.size() == 1
                      && argmax == task.expected[0];
        }
        res.numCorrect += correct;
        ++res.numTasks;
    }
    res.accuracy = static_cast<double>(res.numCorrect) / res.numTasks;
    model_.clearCache();
    return res;
}

EvalResult
Evaluator::run(BenchmarkKind kind)
{
    if (kind == BenchmarkKind::Gsm8k)
        return runGen();
    return runMc(kind);
}

std::map<BenchmarkKind, EvalResult>
Evaluator::runAll()
{
    std::map<BenchmarkKind, EvalResult> out;
    for (BenchmarkKind kind : allBenchmarks())
        out[kind] = run(kind);
    return out;
}

double
Evaluator::aggregateAccuracy()
{
    const auto all = runAll();
    double sum = 0.0;
    for (const auto &[kind, res] : all)
        sum += res.accuracy;
    return sum / static_cast<double>(all.size());
}

} // namespace lrd
