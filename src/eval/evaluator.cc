#include "evaluator.h"

#include <cmath>
#include <limits>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "robust/cancel.h"
#include "robust/fault.h"
#include "robust/recovery.h"
#include "robust/signal.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace lrd {

namespace {

/**
 * Run one item's scoring body under the recovery policy and return
 * the item's final Status. The body writes its answer into the item's
 * fixed result slot; a numeric fault noted while it runs (NaN guard)
 * or an injected "eval.item" allocation failure marks the item
 * failed. Retry mode re-runs the body a bounded number of times —
 * injected faults are consumed by their occurrence counters, so a
 * retry can genuinely clear. Runs entirely on the calling worker, so
 * the per-item outcome is independent of the thread partition.
 */
template <class Body>
Status
scoreWithPolicy(const Body &body)
{
    pollCancelFault("eval.item");
    if (cancelRequested())
        return cancelStatus("eval.item");
    (void)takeNumericFault(); // Drop any stale note from a previous item.
    const RobustPolicy policy = robustPolicy();
    const int attempts =
        policy.mode == RobustMode::Retry ? policy.maxRetries + 1 : 1;
    Status last;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0)
            noteRetry();
        if (faultAt("eval.item", FaultKind::Alloc)) {
            last = Status(StatusCode::ResourceExhausted, "eval.item",
                          "injected allocation failure");
            continue;
        }
        body();
        last = takeNumericFault();
        if (last.ok())
            return last;
    }
    return last;
}

/**
 * Score one multiple-choice item on a decoder model by summed
 * log-likelihood of each choice continuation over a shared-context
 * KV-cache session.
 */
int
pickCausal(TransformerModel &model, const McTask &task,
           const EvalOptions &opts)
{
    InferenceSession base(model);
    Tensor firstLogits = base.append(task.context);

    double bestScore = -std::numeric_limits<double>::infinity();
    int best = 0;
    for (size_t c = 0; c < task.choices.size(); ++c) {
        const TokenSeq &choice = task.choices[c];
        require(!choice.empty(), "Evaluator: empty choice");
        // Copy the shared-context session so each choice extends its
        // own KV cache.
        InferenceSession session = base;
        Tensor logits = firstLogits;
        double ll = 0.0;
        for (size_t i = 0; i < choice.size(); ++i) {
            Tensor lp = logSoftmaxLastDim(logits);
            ll += lp[choice[i]];
            if (i + 1 < choice.size())
                logits = session.append({choice[i]});
        }
        if (opts.lengthNormalize)
            ll /= static_cast<double>(choice.size());
        if (ll > bestScore) {
            bestScore = ll;
            best = static_cast<int>(c);
        }
    }
    return best;
}

/** Score one item on an encoder model by pseudo-log-likelihood. */
int
pickBert(TransformerModel &model, const World &world, const McTask &task,
         const EvalOptions &opts)
{
    double bestScore = -std::numeric_limits<double>::infinity();
    int best = 0;
    for (size_t c = 0; c < task.choices.size(); ++c) {
        const TokenSeq &choice = task.choices[c];
        TokenSeq seq = task.context;
        seq.insert(seq.end(), choice.begin(), choice.end());
        const size_t start = task.context.size();
        double ll = 0.0;
        for (size_t i = 0; i < choice.size(); ++i) {
            TokenSeq masked = seq;
            masked[start + i] = world.maskToken();
            Tensor logits = model.forward(masked);
            Tensor lp = logSoftmaxLastDim(logits);
            ll += lp(static_cast<int64_t>(start + i), choice[i]);
        }
        if (opts.lengthNormalize)
            ll /= static_cast<double>(choice.size());
        if (ll > bestScore) {
            bestScore = ll;
            best = static_cast<int>(c);
        }
    }
    return best;
}

/** Exact-match correctness of one generative item. */
bool
solveGen(TransformerModel &model, const World &world, const GenTask &task,
         bool causal)
{
    if (causal) {
        const TokenSeq out = greedyGenerate(
            model, task.prompt, static_cast<int>(task.expected.size()),
            /*stopToken=*/-1);
        return out == task.expected;
    }
    // Encoder models answer by masked-slot prediction.
    TokenSeq seq = task.prompt;
    const size_t slot = seq.size();
    seq.push_back(world.maskToken());
    Tensor logits = model.forward(seq);
    int argmax = 0;
    const int64_t v = logits.dim(1);
    for (int64_t j = 1; j < v; ++j)
        if (logits(static_cast<int64_t>(slot), j)
            > logits(static_cast<int64_t>(slot), argmax))
            argmax = static_cast<int>(j);
    return task.expected.size() == 1 && argmax == task.expected[0];
}

/** Statuses that mean "never scored", not "scored and failed". */
bool
skippedStatus(const Status &s)
{
    return s.code() == StatusCode::Cancelled
           || s.code() == StatusCode::DeadlineExceeded;
}

/** Sentinel for items a cancel or deadline prevented from running. */
Status
notScoredStatus()
{
    return Status(StatusCode::Cancelled, "eval.item",
                  "not scored: cancellation requested before this item "
                  "ran");
}

/**
 * Fold per-item outcomes into an EvalResult. Skipped items (cancel /
 * deadline) are excluded from both the accuracy denominator and the
 * failure budget; a run where anything was skipped carries a non-ok
 * status so callers can mark the result partial.
 */
template <class CorrectAt>
EvalResult
foldItems(const std::vector<Status> &itemStatus, const CorrectAt &correctAt)
{
    EvalResult res;
    Status firstFailure;
    for (size_t i = 0; i < itemStatus.size(); ++i) {
        ++res.numTasks;
        if (skippedStatus(itemStatus[i])) {
            ++res.numSkipped;
            continue;
        }
        if (!itemStatus[i].ok()) {
            // Degraded items score as incorrect; the budget check
            // below decides whether the run is still trustworthy.
            ++res.numFailed;
            if (firstFailure.ok())
                firstFailure = itemStatus[i];
            continue;
        }
        res.numCorrect += correctAt(i) ? 1 : 0;
    }
    const int attempted = res.numTasks - res.numSkipped;
    res.accuracy = attempted > 0
                       ? static_cast<double>(res.numCorrect) / attempted
                       : 0.0;
    if (attempted > 0)
        enforceFailureBudget("eval", res.numFailed, attempted,
                             firstFailure);
    if (res.numSkipped > 0)
        res.status = cancelStatus("eval.item");
    return res;
}

} // namespace

Evaluator::Evaluator(TransformerModel &model, const World &world,
                     EvalOptions opts)
    : model_(model), world_(world), opts_(opts)
{
    require(opts_.numTasks > 0, "Evaluator: numTasks must be positive");
}

int
Evaluator::pickChoiceCausal(const McTask &task)
{
    return pickCausal(model_, task, opts_);
}

int
Evaluator::pickChoiceBert(const McTask &task)
{
    return pickBert(model_, world_, task, opts_);
}

/**
 * Run fn(i, model) for i in [0, n). Model forward passes cache
 * activations, so the shared model cannot be used from two threads;
 * instead each pool worker scores its items on a private replica
 * (deserialized from one snapshot, hence bitwise-identical weights),
 * while the posting thread uses the original model. Items are
 * independent, so any fixed item partition yields identical results —
 * this is what keeps eval output invariant under LRD_THREADS.
 */
template <class Fn>
void
Evaluator::forEachItemParallel(int64_t n, const Fn &fn)
{
    static Counter *items =
        MetricsRegistry::instance().counter("eval.items");
    ThreadPool &pool = ThreadPool::instance();
    if (pool.numThreads() <= 1 || n <= 1 || ThreadPool::inParallelRegion()
        || ThreadPool::workerIndex() != 0) {
        for (int64_t i = 0; i < n; ++i) {
            LRD_TRACE_SPAN("eval.item");
            items->inc();
            fn(i, model_);
        }
        return;
    }

    const std::vector<uint8_t> snapshot = model_.serialize();
    std::vector<std::unique_ptr<TransformerModel>> replicas(
        static_cast<size_t>(pool.numThreads()));
    pool.parallelFor(0, n, 1, [&](int64_t lo, int64_t hi) {
        const auto w = static_cast<size_t>(ThreadPool::workerIndex());
        TransformerModel *m = &model_;
        if (w != 0) {
            // Each worker index is owned by exactly one live thread,
            // so lazy slot initialization is race-free.
            if (!replicas[w])
                // lrd-lint: allow(hot-path-alloc) per-worker model replica: one allocation per worker per run
                replicas[w] = std::make_unique<TransformerModel>(
                    TransformerModel::deserialize(snapshot));
            m = replicas[w].get();
        }
        for (int64_t i = lo; i < hi; ++i) {
            LRD_TRACE_SPAN("eval.item");
            items->inc();
            fn(i, *m);
        }
    });
}

EvalResult
Evaluator::runMc(BenchmarkKind kind)
{
    const auto tasks =
        makeMcTasks(kind, world_, opts_.numTasks, opts_.seed);
    const bool causal = model_.config().arch == Arch::LlamaStyle;
    WatchdogSection watched("eval");
    const auto n = static_cast<int64_t>(tasks.size());
    std::vector<int> picks(tasks.size(), 0);
    // Items past the admitted budget (or dropped by a mid-run cancel)
    // keep this sentinel and fold as skipped, not failed.
    std::vector<Status> itemStatus(tasks.size(), notScoredStatus());
    const int64_t admitted = consumeWorkBudget("items", n);
    forEachItemParallel(admitted, [&](int64_t i, TransformerModel &m) {
        const McTask &task = tasks[static_cast<size_t>(i)];
        itemStatus[static_cast<size_t>(i)] = scoreWithPolicy([&] {
            picks[static_cast<size_t>(i)] =
                causal ? pickCausal(m, task, opts_)
                       : pickBert(m, world_, task, opts_);
        });
    });
    if (admitted < n)
        expireDeadline("eval.item");
    model_.clearCache();
    return foldItems(itemStatus, [&](size_t i) {
        return picks[i] == tasks[i].gold;
    });
}

EvalResult
Evaluator::runGen()
{
    const auto tasks = makeGsm8kTasks(world_, opts_.numTasks, opts_.seed);
    const bool causal = model_.config().arch == Arch::LlamaStyle;
    WatchdogSection watched("eval");
    const auto n = static_cast<int64_t>(tasks.size());
    std::vector<uint8_t> correct(tasks.size(), 0);
    std::vector<Status> itemStatus(tasks.size(), notScoredStatus());
    const int64_t admitted = consumeWorkBudget("items", n);
    forEachItemParallel(admitted, [&](int64_t i, TransformerModel &m) {
        itemStatus[static_cast<size_t>(i)] = scoreWithPolicy([&] {
            correct[static_cast<size_t>(i)] =
                solveGen(m, world_, tasks[static_cast<size_t>(i)], causal)
                    ? 1
                    : 0;
        });
    });
    if (admitted < n)
        expireDeadline("eval.item");
    model_.clearCache();
    return foldItems(itemStatus,
                     [&](size_t i) { return correct[i] != 0; });
}

EvalResult
Evaluator::run(BenchmarkKind kind)
{
    if (kind == BenchmarkKind::Gsm8k)
        return runGen();
    return runMc(kind);
}

std::map<BenchmarkKind, EvalResult>
Evaluator::runAll()
{
    std::map<BenchmarkKind, EvalResult> out;
    for (BenchmarkKind kind : allBenchmarks())
        out[kind] = run(kind);
    return out;
}

double
Evaluator::aggregateAccuracy()
{
    const auto all = runAll();
    double sum = 0.0;
    for (const auto &[kind, res] : all)
        sum += res.accuracy;
    return sum / static_cast<double>(all.size());
}

} // namespace lrd
