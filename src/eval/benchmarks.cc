#include "benchmarks.h"

#include <algorithm>

#include "train/corpus.h"
#include "util/logging.h"

namespace lrd {

const std::vector<BenchmarkKind> &
allBenchmarks()
{
    static const std::vector<BenchmarkKind> kAll = {
        BenchmarkKind::ArcEasy,    BenchmarkKind::ArcChallenge,
        BenchmarkKind::HellaSwag,  BenchmarkKind::Mmlu,
        BenchmarkKind::TruthfulQa, BenchmarkKind::WinoGrande,
        BenchmarkKind::Gsm8k,
    };
    return kAll;
}

std::string
benchmarkName(BenchmarkKind kind)
{
    switch (kind) {
      case BenchmarkKind::ArcEasy: return "ARC Easy";
      case BenchmarkKind::ArcChallenge: return "ARC Challenge";
      case BenchmarkKind::HellaSwag: return "HellaSwag";
      case BenchmarkKind::Mmlu: return "MMLU";
      case BenchmarkKind::TruthfulQa: return "TruthfulQA";
      case BenchmarkKind::WinoGrande: return "WinoGrande";
      case BenchmarkKind::Gsm8k: return "GSM8K";
    }
    panic("benchmarkName: unknown kind");
}

int
benchmarkNumChoices(BenchmarkKind kind)
{
    switch (kind) {
      case BenchmarkKind::WinoGrande: return 2;
      case BenchmarkKind::Gsm8k: return 0;
      default: return 4;
    }
}

namespace {

/** The three fact relations a question can probe. */
enum class Relation { Color, Category, Place };

int
relationToken(const World &w, Relation r)
{
    switch (r) {
      case Relation::Color: return w.hasColorToken();
      case Relation::Category: return w.isAToken();
      case Relation::Place: return w.livesInToken();
    }
    panic("relationToken: unknown relation");
}

int
relationAnswerToken(const World &w, Relation r, int entity)
{
    switch (r) {
      case Relation::Color: return w.colorToken(w.colorOf(entity));
      case Relation::Category:
        return w.categoryToken(w.categoryOf(entity));
      case Relation::Place: return w.placeToken(w.placeOf(entity));
    }
    panic("relationAnswerToken: unknown relation");
}

int
relationFamilySize(const World &w, Relation r)
{
    switch (r) {
      case Relation::Color: return w.spec().numColors;
      case Relation::Category: return w.spec().numCategories;
      case Relation::Place: return w.spec().numPlaces;
    }
    panic("relationFamilySize: unknown relation");
}

int
relationFamilyToken(const World &w, Relation r, int i)
{
    switch (r) {
      case Relation::Color: return w.colorToken(i);
      case Relation::Category: return w.categoryToken(i);
      case Relation::Place: return w.placeToken(i);
    }
    panic("relationFamilyToken: unknown relation");
}

/** Sample a same-family distractor token != answer. */
int
sameFamilyDistractor(const World &w, Relation r, int answerToken, Rng &rng)
{
    const int n = relationFamilySize(w, r);
    for (;;) {
        const int tok = relationFamilyToken(
            w, r, static_cast<int>(
                      rng.uniformInt(static_cast<uint64_t>(n))));
        if (tok != answerToken)
            return tok;
    }
}

/** Sample a distractor token from a *different* attribute family. */
int
crossFamilyDistractor(const World &w, Relation r, Rng &rng)
{
    for (;;) {
        const auto other = static_cast<Relation>(rng.uniformInt(3));
        if (other == r)
            continue;
        const int n = relationFamilySize(w, other);
        return relationFamilyToken(
            w, other,
            static_cast<int>(rng.uniformInt(static_cast<uint64_t>(n))));
    }
}

/** Place `goldToken` and distractors into a shuffled 4-choice item. */
McTask
assembleChoices(TokenSeq context, int goldToken,
                std::vector<int> distractors, Rng &rng)
{
    McTask task;
    task.context = std::move(context);
    std::vector<int> all = {goldToken};
    all.insert(all.end(), distractors.begin(), distractors.end());
    // Shuffle while tracking the gold position.
    for (size_t i = all.size(); i > 1; --i) {
        const size_t j = rng.uniformInt(i);
        std::swap(all[i - 1], all[j]);
    }
    for (size_t i = 0; i < all.size(); ++i) {
        task.choices.push_back({all[i]});
        if (all[i] == goldToken)
            task.gold = static_cast<int>(i);
    }
    return task;
}

/** Entity sampler for head-biased benchmarks: restrict to the first
 *  quarter of the (Zipf-ordered) entity list, i.e. the well-learned
 *  entities. */
int
sampleHeadEntity(const World &w, Rng &rng)
{
    const int head = std::max(2, w.spec().numEntities / 4);
    return static_cast<int>(rng.uniformInt(static_cast<uint64_t>(head)));
}

McTask
makeFactTask(const World &w, Rng &rng, bool headEntities,
             bool sameFamilyDistractors)
{
    const int entity = headEntities
                           ? sampleHeadEntity(w, rng)
                           : static_cast<int>(rng.uniformInt(
                                 static_cast<uint64_t>(
                                     w.spec().numEntities)));
    // Color facts are excluded: the plain corpus deliberately skews
    // their frequency (the TruthfulQA mechanism), so knowledge QA
    // probes only the uncontaminated category/place relations.
    const auto rel =
        static_cast<Relation>(1 + rng.uniformInt(2));
    const int answer = relationAnswerToken(w, rel, entity);
    TokenSeq ctx = {w.bosToken(), w.entityToken(entity),
                    relationToken(w, rel)};
    std::vector<int> distractors;
    while (distractors.size() < 3) {
        // Easy mode still includes one same-family distractor so the
        // item is not solvable by type constraints alone.
        const bool sameFamily =
            sameFamilyDistractors || distractors.empty();
        const int d = sameFamily
                          ? sameFamilyDistractor(w, rel, answer, rng)
                          : crossFamilyDistractor(w, rel, rng);
        if (d == answer)
            continue;
        if (std::find(distractors.begin(), distractors.end(), d)
            != distractors.end())
            continue;
        distractors.push_back(d);
    }
    return assembleChoices(std::move(ctx), answer, std::move(distractors),
                           rng);
}

McTask
makeArithmeticTask(const World &w, Rng &rng)
{
    const int nn = w.spec().numNumbers;
    const int a = static_cast<int>(
        rng.uniformInt(static_cast<uint64_t>(nn / 2)));
    const int b = static_cast<int>(
        rng.uniformInt(static_cast<uint64_t>(nn - a)));
    const int answer = w.numberToken(a + b);
    TokenSeq ctx = {w.bosToken(), w.numberToken(a), w.plusToken(),
                    w.numberToken(b), w.equalsToken()};
    std::vector<int> distractors;
    while (distractors.size() < 3) {
        const int d = w.numberToken(static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(nn))));
        if (d == answer
            || std::find(distractors.begin(), distractors.end(), d)
                   != distractors.end())
            continue;
        distractors.push_back(d);
    }
    return assembleChoices(std::move(ctx), answer, std::move(distractors),
                           rng);
}

McTask
makeHellaSwagTask(const World &w, Rng &rng)
{
    CorpusGenerator gen(w, rng.next());
    const auto family = static_cast<PatternFamily>(
        rng.uniformInt(kNumPatternFamilies));
    const int nSym = w.spec().numPatternSymbols;
    const int s0 =
        static_cast<int>(rng.uniformInt(static_cast<uint64_t>(nSym)));
    int s1 =
        static_cast<int>(rng.uniformInt(static_cast<uint64_t>(nSym - 1)));
    if (s1 >= s0)
        ++s1;
    TokenSeq full = gen.patternSentence(family, s0, s1); // 8 syms + sep
    TokenSeq ctx = {w.bosToken()};
    ctx.insert(ctx.end(), full.begin(), full.begin() + 6);
    const TokenSeq goldCont(full.begin() + 6, full.begin() + 8);

    McTask task;
    task.context = std::move(ctx);
    // Distractors are *off-phase copies* built from the context's own
    // tokens (wrong-phase induction, off-by-one counting), so a model
    // with imperfect pattern tracking is genuinely confusable —
    // random-symbol distractors would be trivially rejected.
    std::vector<TokenSeq> conts = {goldCont};
    auto addIfNew = [&](TokenSeq cont) {
        if (conts.size() < 4
            && std::find(conts.begin(), conts.end(), cont) == conts.end())
            conts.push_back(std::move(cont));
    };
    const int a = task.context[task.context.size() - 2]; // pos 4 token
    const int b = task.context[task.context.size() - 1]; // pos 5 token
    if (family == PatternFamily::Counting
        || family == PatternFamily::Countdown) {
        const int g0 = goldCont[0], g1 = goldCont[1];
        const int lo = w.numberToken(0);
        const int hi = w.numberToken(w.spec().numNumbers - 1);
        auto clampNum = [&](int t) { return std::min(hi, std::max(lo, t)); };
        addIfNew({b, g0});                          // one-step stutter
        addIfNew({g0, clampNum(g1 + (family == PatternFamily::Counting
                                         ? 1 : -1))}); // skips a step
        addIfNew({clampNum(g0 + (family == PatternFamily::Counting
                                     ? 1 : -1)),
                  clampNum(g1 + (family == PatternFamily::Counting
                                     ? 1 : -1))});  // off-by-one phase
        addIfNew({a, b});                           // verbatim repeat
    } else {
        // Symbol families: permutations of the two context symbols.
        addIfNew({goldCont[1], goldCont[0]});
        addIfNew({a, b});
        addIfNew({b, a});
        addIfNew({goldCont[0], goldCont[0] == a ? b : a});
        addIfNew({b, b});
        addIfNew({a, a});
    }
    // Degenerate patterns (e.g. repetition) collapse many of the
    // above; fall back to other-pattern continuations.
    while (conts.size() < 4) {
        const auto otherFamily = static_cast<PatternFamily>(
            rng.uniformInt(kNumPatternFamilies));
        int o0 = static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(nSym)));
        int o1 = static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(nSym - 1)));
        if (o1 >= o0)
            ++o1;
        TokenSeq other = gen.patternSentence(otherFamily, o0, o1);
        addIfNew(TokenSeq(other.begin() + 6, other.begin() + 8));
    }
    for (size_t i = conts.size(); i > 1; --i) {
        const size_t j = rng.uniformInt(i);
        std::swap(conts[i - 1], conts[j]);
    }
    for (size_t i = 0; i < conts.size(); ++i) {
        if (conts[i] == goldCont)
            task.gold = static_cast<int>(i);
        task.choices.push_back(std::move(conts[i]));
    }
    return task;
}

McTask
makeTruthfulQaTask(const World &w, Rng &rng)
{
    const int entity = sampleHeadEntity(w, rng);
    const int truth = w.colorToken(w.colorOf(entity));
    const int myth = w.colorToken(w.mythColorOf(entity));
    TokenSeq ctx = {w.bosToken(), w.entityToken(entity),
                    w.hasColorToken()};
    std::vector<int> distractors = {myth};
    while (distractors.size() < 3) {
        const int d =
            sameFamilyDistractor(w, Relation::Color, truth, rng);
        if (d == myth
            || std::find(distractors.begin(), distractors.end(), d)
                   != distractors.end())
            continue;
        distractors.push_back(d);
    }
    return assembleChoices(std::move(ctx), truth, std::move(distractors),
                           rng);
}

McTask
makeWinoGrandeTask(const World &w, Rng &rng)
{
    const int entity = sampleHeadEntity(w, rng);
    const int verb = static_cast<int>(
        rng.uniformInt(static_cast<uint64_t>(w.spec().numVerbs)));
    McTask task;
    task.context = {w.bosToken(), w.entityToken(entity),
                    w.verbToken(verb)};
    const int g = w.genderOf(entity);
    task.choices = {{w.pronounToken(0)}, {w.pronounToken(1)}};
    task.gold = g;
    return task;
}

} // namespace

std::vector<McTask>
makeMcTasks(BenchmarkKind kind, const World &world, int n, uint64_t seed)
{
    require(kind != BenchmarkKind::Gsm8k,
            "makeMcTasks: GSM8K is generation-scored; use "
            "makeGsm8kTasks");
    require(n > 0, "makeMcTasks: n must be positive");
    Rng rng(seed ^ (static_cast<uint64_t>(kind) * 0x9E3779B9ULL));
    std::vector<McTask> tasks;
    tasks.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        switch (kind) {
          case BenchmarkKind::ArcEasy:
            tasks.push_back(makeFactTask(world, rng, /*head=*/true,
                                         /*sameFamily=*/false));
            break;
          case BenchmarkKind::ArcChallenge:
            tasks.push_back(makeFactTask(world, rng, true, true));
            break;
          case BenchmarkKind::HellaSwag:
            tasks.push_back(makeHellaSwagTask(world, rng));
            break;
          case BenchmarkKind::Mmlu:
            // Mixed domains over all entities (tail included) plus
            // arithmetic every fourth item.
            if (i % 4 == 3)
                tasks.push_back(makeArithmeticTask(world, rng));
            else
                tasks.push_back(makeFactTask(world, rng, /*head=*/false,
                                             /*sameFamily=*/true));
            break;
          case BenchmarkKind::TruthfulQa:
            tasks.push_back(makeTruthfulQaTask(world, rng));
            break;
          case BenchmarkKind::WinoGrande:
            tasks.push_back(makeWinoGrandeTask(world, rng));
            break;
          case BenchmarkKind::Gsm8k:
            break; // unreachable
        }
    }
    return tasks;
}

std::vector<GenTask>
makeGsm8kTasks(const World &world, int n, uint64_t seed)
{
    require(n > 0, "makeGsm8kTasks: n must be positive");
    Rng rng(seed ^ 0xC0FFEEULL);
    CorpusGenerator gen(world, seed ^ 0xFEEDULL);
    std::vector<GenTask> tasks;
    tasks.reserve(static_cast<size_t>(n));
    const int nn = world.spec().numNumbers;
    for (int i = 0; i < n; ++i) {
        GenTask task;
        task.prompt = {world.bosToken()};
        // Few-shot examples (4 shots, mirroring the paper's 8-shot
        // protocol scaled to our context length).
        for (int shot = 0; shot < 4; ++shot) {
            const int a = static_cast<int>(
                rng.uniformInt(static_cast<uint64_t>(nn / 2)));
            const int b = static_cast<int>(
                rng.uniformInt(static_cast<uint64_t>(nn - a)));
            TokenSeq s = gen.additionFact(a, b);
            task.prompt.insert(task.prompt.end(), s.begin(), s.end());
        }
        // Query: every third item is a harder two-step chain.
        if (i % 3 == 2) {
            const int third = nn / 3;
            const int a = static_cast<int>(
                rng.uniformInt(static_cast<uint64_t>(third)));
            const int b = static_cast<int>(
                rng.uniformInt(static_cast<uint64_t>(third)));
            const int c = static_cast<int>(
                rng.uniformInt(static_cast<uint64_t>(third)));
            task.prompt.insert(task.prompt.end(),
                               {world.numberToken(a), world.plusToken(),
                                world.numberToken(b), world.plusToken(),
                                world.numberToken(c),
                                world.equalsToken()});
            task.expected = {world.numberToken(a + b + c)};
        } else {
            const int a = static_cast<int>(
                rng.uniformInt(static_cast<uint64_t>(nn / 2)));
            const int b = static_cast<int>(
                rng.uniformInt(static_cast<uint64_t>(nn - a)));
            task.prompt.insert(task.prompt.end(),
                               {world.numberToken(a), world.plusToken(),
                                world.numberToken(b),
                                world.equalsToken()});
            task.expected = {world.numberToken(a + b)};
        }
        tasks.push_back(std::move(task));
    }
    return tasks;
}

} // namespace lrd
