/**
 * @file
 * RunManifest: the who/what/where of one process run, captured at
 * startup and stamped into every flight-recorder artifact so that
 * telemetry from different runs, machines, and builds stays
 * attributable and comparable (`lrdtool compare` refuses to diff what
 * it cannot match).
 *
 * Fields and where they come from:
 *
 * - runId        wall-clock ns xor pid, hex — unique per process,
 *                never used as numeric state (determinism unaffected).
 * - gitSha       LRD_GIT_SHA compile definition (CMake configure time).
 * - buildType    LRD_CMAKE_BUILD_TYPE compile definition.
 * - cpuModel     "model name" from /proc/cpuinfo.
 * - simdLevel /  set via setManifestRuntimeInfo() by the entry point
 *   threads /    (lrdtool, benches, tests): the SIMD dispatch level
 *   commandLine  and pool size live in layers *above* obs, so the
 *                manifest cannot read them itself without a layering
 *                back-edge — the top of the stack pushes them down.
 * - env          every LRD_* variable present at capture.
 * - startUnixMs  wall-clock capture time.
 *
 * toJson()/manifestFromJson() round-trip through util/json.h; the
 * JSON object doubles as the first record of a telemetry JSONL file
 * (type "manifest").
 */

#ifndef LRD_OBS_MANIFEST_H
#define LRD_OBS_MANIFEST_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace lrd {

/** Identity of one run; see file comment for field provenance. */
struct RunManifest
{
    int schema = 1; ///< Bumped on incompatible JSONL layout changes.
    std::string runId;
    std::string gitSha;
    std::string buildType;
    std::string cpuModel;
    std::string simdLevel;
    int threads = 0;
    std::string commandLine;
    int64_t startUnixMs = 0;
    /** LRD_* environment at capture, sorted by name. */
    std::vector<std::pair<std::string, std::string>> env;

    /** One JSON object (single line, no trailing newline). */
    std::string toJson() const;
};

/**
 * Record runtime facts the obs layer cannot observe itself. Call
 * before the first captureRunManifest() (lrdtool does this right
 * after resolving the pool size). Unset fields default to "unknown"
 * / 0 / "".
 */
void setManifestRuntimeInfo(const std::string &simdLevel, int threads,
                            const std::string &commandLine);

/** Capture a manifest for this process now. */
RunManifest captureRunManifest();

/** Rebuild a manifest from a parsed toJson() document. */
Result<RunManifest> manifestFromJson(const JsonValue &doc);

} // namespace lrd

#endif // LRD_OBS_MANIFEST_H
