#include "manifest.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>

#include "util/logging.h"

#ifndef LRD_GIT_SHA
#define LRD_GIT_SHA "unknown"
#endif
#ifndef LRD_CMAKE_BUILD_TYPE
#define LRD_CMAKE_BUILD_TYPE "unknown"
#endif

extern char **environ;

namespace lrd {

namespace {

/** Runtime facts pushed down from the top of the stack; written once
 *  at startup before any sampler thread reads them. */
struct RuntimeInfo
{
    std::string simdLevel = "unknown";
    int threads = 0;
    std::string commandLine;
};

std::mutex gRuntimeInfoMu;
RuntimeInfo &
runtimeInfo()
{
    static RuntimeInfo *info = new RuntimeInfo;
    return *info;
}

std::string
readCpuModel()
{
    std::FILE *f = std::fopen("/proc/cpuinfo", "r");
    if (!f)
        return "unknown";
    char line[512];
    std::string model = "unknown";
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, "model name", 10) != 0)
            continue;
        const char *colon = std::strchr(line, ':');
        if (!colon)
            continue;
        ++colon;
        while (*colon == ' ' || *colon == '\t')
            ++colon;
        model = colon;
        while (!model.empty()
               && (model.back() == '\n' || model.back() == '\r'))
            model.pop_back();
        break;
    }
    std::fclose(f);
    return model;
}

/**
 * Wall-clock capture for run identity and timestamps only. The lint
 * wall-clock rule guards deterministic *state*; a manifest stamp is
 * metadata that never feeds back into computation.
 */
int64_t
wallUnixMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               // lrd-lint: allow(wall-clock)
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

std::string
makeRunId(int64_t unixMs)
{
    const auto pid = static_cast<uint64_t>(::getpid());
    const auto stamp = static_cast<uint64_t>(unixMs);
    std::ostringstream oss;
    oss << std::hex << stamp << "-" << pid;
    return oss.str();
}

} // namespace

void
setManifestRuntimeInfo(const std::string &simdLevel, int threads,
                       const std::string &commandLine)
{
    std::lock_guard<std::mutex> lock(gRuntimeInfoMu);
    RuntimeInfo &info = runtimeInfo();
    info.simdLevel = simdLevel;
    info.threads = threads;
    info.commandLine = commandLine;
}

RunManifest
captureRunManifest()
{
    RunManifest m;
    m.startUnixMs = wallUnixMs();
    m.runId = makeRunId(m.startUnixMs);
    m.gitSha = LRD_GIT_SHA;
    m.buildType = LRD_CMAKE_BUILD_TYPE;
    m.cpuModel = readCpuModel();
    {
        std::lock_guard<std::mutex> lock(gRuntimeInfoMu);
        const RuntimeInfo &info = runtimeInfo();
        m.simdLevel = info.simdLevel;
        m.threads = info.threads;
        m.commandLine = info.commandLine;
    }
    for (char **e = environ; e && *e; ++e) {
        const char *eq = std::strchr(*e, '=');
        if (!eq || std::strncmp(*e, "LRD_", 4) != 0)
            continue;
        m.env.emplace_back(std::string(*e, static_cast<size_t>(eq - *e)),
                           std::string(eq + 1));
    }
    std::sort(m.env.begin(), m.env.end());
    return m;
}

std::string
RunManifest::toJson() const
{
    std::ostringstream oss;
    oss << "{\"type\": \"manifest\", \"schema\": " << schema
        << ", \"runId\": " << jsonQuote(runId)
        << ", \"gitSha\": " << jsonQuote(gitSha)
        << ", \"buildType\": " << jsonQuote(buildType)
        << ", \"cpuModel\": " << jsonQuote(cpuModel)
        << ", \"simdLevel\": " << jsonQuote(simdLevel)
        << ", \"threads\": " << threads
        << ", \"commandLine\": " << jsonQuote(commandLine)
        << ", \"startUnixMs\": " << startUnixMs << ", \"env\": {";
    for (size_t i = 0; i < env.size(); ++i) {
        oss << (i ? ", " : "") << jsonQuote(env[i].first) << ": "
            << jsonQuote(env[i].second);
    }
    oss << "}}";
    return oss.str();
}

Result<RunManifest>
manifestFromJson(const JsonValue &doc)
{
    if (!doc.isObject()
        || doc.stringOr("type", "manifest") != "manifest")
        return Status(StatusCode::InvalidArgument, "manifest.parse",
                      "not a manifest object");
    RunManifest m;
    m.schema = static_cast<int>(doc.intOr("schema", 1));
    m.runId = doc.stringOr("runId", "");
    m.gitSha = doc.stringOr("gitSha", "unknown");
    m.buildType = doc.stringOr("buildType", "unknown");
    m.cpuModel = doc.stringOr("cpuModel", "unknown");
    m.simdLevel = doc.stringOr("simdLevel", "unknown");
    m.threads = static_cast<int>(doc.intOr("threads", 0));
    m.commandLine = doc.stringOr("commandLine", "");
    m.startUnixMs = doc.intOr("startUnixMs", 0);
    if (const JsonValue *env = doc.find("env"); env && env->isObject())
        for (const auto &[name, value] : env->members())
            if (value.isString())
                m.env.emplace_back(name, value.asString());
    if (m.runId.empty())
        return Status(StatusCode::DataLoss, "manifest.parse",
                      "manifest record lacks a runId");
    return m;
}

} // namespace lrd
