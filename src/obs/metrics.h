/**
 * @file
 * Process-wide metrics registry: counters, gauges and log2-bucket
 * histograms, recorded through per-thread shards so the hot path
 * never takes a lock.
 *
 * Design (see docs/ARCHITECTURE.md, "Observability"):
 *
 * - A metric is a named slot. Handles (Counter*, Histogram*, Gauge*)
 *   are looked up once (mutex-protected, cold) and cached by the
 *   instrumented code; recording through a handle touches only the
 *   calling thread's shard.
 * - Each thread owns one shard, keyed by its workerLane(). Shard
 *   cells are std::atomic<int64_t> written with relaxed single-writer
 *   load/store pairs — plain additions in machine code, but race-free
 *   under TSan because snapshots use relaxed loads.
 * - snapshot() merges shards in deterministic (lane, creation) order.
 *   Counter and histogram cells are integers, so merged totals are
 *   exactly reproducible at any thread count — the same guarantee the
 *   thread pool gives the numeric kernels (PR 1). (Workload counters
 *   such as gemm.macs are therefore thread-count-invariant; scheduling
 *   counters like pool.chunks legitimately vary with the schedule,
 *   e.g. nested regions inline as a single chunk.)
 * - Recording is gated on one global atomic flag (default off). With
 *   metrics disabled every record call is a relaxed load + branch.
 *
 * Shards are returned to a per-lane free list on thread exit and
 * reused by the next worker with that lane, so repeated pool resizes
 * do not grow memory and cumulative totals survive worker churn.
 */

#ifndef LRD_OBS_METRICS_H
#define LRD_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lrd {

class MetricsRegistry;

namespace obsdetail {

/** Global metrics on/off switch (read on every record call). */
extern std::atomic<bool> gMetricsEnabled;

constexpr int kMaxCounters = 4096;
constexpr int kMaxHistograms = 128;
constexpr int kHistBuckets = 48; ///< Bucket b: [2^(b-1), 2^b); b0 = {<=0}.

void addToCounterSlot(int slot, int64_t n);
void recordToHistogramSlot(int slot, int64_t value);

} // namespace obsdetail

/** Monotonically increasing integer metric. */
class Counter
{
  public:
    /** Add n to this thread's shard cell; no-op while disabled. */
    void
    add(int64_t n)
    {
        if (!obsdetail::gMetricsEnabled.load(std::memory_order_relaxed))
            return;
        obsdetail::addToCounterSlot(slot_, n);
    }

    void inc() { add(1); }

    /** Merged total across all shards (cold; takes the registry lock). */
    int64_t total() const;

    const std::string &name() const { return name_; }

  private:
    friend class MetricsRegistry;
    Counter(std::string name, int slot, bool perLane)
        : name_(std::move(name)), slot_(slot), perLane_(perLane)
    {
    }

    std::string name_;
    int slot_;
    bool perLane_; ///< Export a per-worker breakdown in snapshots.
};

/** Last-write-wins double metric (set from the posting thread). */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double value() const { return value_.load(std::memory_order_relaxed); }
    const std::string &name() const { return name_; }

  private:
    friend class MetricsRegistry;
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    std::string name_;
    std::atomic<double> value_{0.0};
};

/** Fixed log2-bucket histogram of non-negative integer samples. */
class Histogram
{
  public:
    /** Record one sample; no-op while disabled. */
    void
    record(int64_t value)
    {
        if (!obsdetail::gMetricsEnabled.load(std::memory_order_relaxed))
            return;
        obsdetail::recordToHistogramSlot(slot_, value);
    }

    /** Bucket index for a value: 0 for <= 0, else 1 + floor(log2 v),
     *  clamped to the last bucket. */
    static int bucketOf(int64_t value);

    /** Inclusive lower bound of a bucket (0 for bucket 0). */
    static int64_t bucketLowerBound(int bucket);

    const std::string &name() const { return name_; }

  private:
    friend class MetricsRegistry;
    Histogram(std::string name, int slot)
        : name_(std::move(name)), slot_(slot)
    {
    }

    std::string name_;
    int slot_;
};

/** Merged view of one histogram. */
struct HistogramSnapshot
{
    int64_t count = 0;
    int64_t sum = 0;
    std::array<int64_t, obsdetail::kHistBuckets> buckets{};

    /**
     * Estimated value at quantile q in [0, 1], linearly interpolated
     * inside the covering log2 bucket [2^(b-1), 2^b). The estimate is
     * exact for bucket boundaries and within one bucket width (a
     * factor of 2) otherwise — good enough to read a latency
     * distribution, which raw log2 bucket counts are not. Returns 0
     * for an empty histogram.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }
};

/** Point-in-time merged view of the whole registry. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, int64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
    /** Per-lane totals for counters registered with perLane = true. */
    std::vector<std::pair<std::string, std::vector<int64_t>>>
        perLaneCounters;
};

/**
 * The process-wide registry. instance() never destructs (it is
 * deliberately leaked) so worker threads and thread-local shard
 * destructors can always reach it during shutdown.
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Whether recording is active (global switch, default off). */
    static bool
    enabled()
    {
        return obsdetail::gMetricsEnabled.load(std::memory_order_relaxed);
    }

    void setEnabled(bool on);

    /**
     * Find-or-create a counter. Handles are stable for the process
     * lifetime; cache the pointer in instrumented code.
     * @param perLane Include a per-worker breakdown in snapshots/JSON
     *                (used for thread-pool utilization metrics).
     */
    Counter *counter(const std::string &name, bool perLane = false);
    Gauge *gauge(const std::string &name);
    Histogram *histogram(const std::string &name);

    /** Merge all shards in (lane, creation) order. */
    MetricsSnapshot snapshot() const;

    /**
     * Render the merged registry as JSON: {"context": ..,
     * "counters": {..}, "gauges": {..}, "histograms": {..},
     * "perWorker": {..}} — flat name->value keys, the same convention
     * the BENCH_*.json artifacts use.
     */
    std::string toJson() const;

    /** Zero every shard cell and gauge (tests and benchmarks). */
    void reset();

  private:
    MetricsRegistry() = default;
};

} // namespace lrd

#endif // LRD_OBS_METRICS_H
