/**
 * @file
 * Time-series telemetry sampler: a background thread that appends one
 * JSONL record per tick to a crash-durable, size-bounded file.
 *
 * File layout (one JSON object per line):
 *
 *   {"type":"manifest", ...}   RunManifest — always the first record
 *                              of every segment.
 *   {"type":"sample","t_ms":..,"phase":"train",
 *    "rss_bytes":..,"rss_peak_bytes":..,
 *    "arena_live_bytes":..,"arena_peak_bytes":..,
 *    "arena_allocs":..,"arena_alloc_bytes":..,
 *    "counters":{<name>:<delta since previous sample>, ...},
 *    "gauges":{<name>:<current value>, ...},
 *    "hist":{<name>:{"count":..,"p50":..,"p90":..,"p99":..}, ...}}
 *   {"type":"final","t_ms":..,"runId":..,"samples":..,"rotations":..,
 *    "counters":{<cumulative totals>},"gauges":{..},"hist":{..},
 *    "rss_peak_bytes":..,"arena_peak_bytes":..}
 *
 * Durability and bounding: every record is fflush()ed as it is
 * written, so a SIGKILL loses at most the line being appended (and
 * parseJsonLines(stopAtError) tolerates exactly that). When a segment
 * reaches maxSamplesPerSegment the file rotates to "<path>.1" and a
 * fresh segment (re-stamped with the manifest) starts — a two-segment
 * ring that bounds disk while keeping the most recent window.
 *
 * Determinism rules (the reason this thread is allowed to exist):
 *
 * - The sampler is read-only over shared state: relaxed snapshots of
 *   the metric shards, /proc reads, arena counter loads. It never
 *   records metrics, takes pool work, or touches the numeric core, so
 *   numeric results are bitwise identical with telemetry on or off at
 *   any LRD_THREADS (tests/telemetry_test.cc holds this).
 * - It waits on a condition variable in short slices (never a raw
 *   sleep) so stop/flush requests land promptly.
 * - requestTelemetryFlush() is a single relaxed atomic store —
 *   async-signal-safe, called by the SIGINT/SIGTERM handler so a
 *   cancelled run still gets its telemetry flushed to disk even if
 *   the cooperative drain then hangs or a second signal force-exits.
 *
 * Enabled with LRD_TELEMETRY=<ms>[:path] (see obs.h).
 */

#ifndef LRD_OBS_SAMPLER_H
#define LRD_OBS_SAMPLER_H

#include <cstdint>
#include <string>

#include "util/status.h"

namespace lrd {

/** Parsed LRD_TELEMETRY specification. */
struct TelemetryConfig
{
    int intervalMs = 250;
    std::string path = "lrd_telemetry.jsonl";
    /** Samples per file segment before rotating to "<path>.1". */
    int64_t maxSamplesPerSegment = 100000;
};

/** Parse "<ms>" or "<ms>:<path>" (fatal-free; ms must be >= 1). */
Result<TelemetryConfig> parseTelemetrySpec(const std::string &spec);

/**
 * Capture the run manifest, open the JSONL file, and start the
 * sampler thread. No-op (with a warning) if already running or the
 * file cannot be opened. Implicitly enables metrics recording, since
 * counter deltas are the payload.
 */
void startTelemetrySampler(const TelemetryConfig &config);

/**
 * Write the final cumulative record, close the file, and join the
 * thread. Idempotent; safe to call when never started.
 */
void stopTelemetrySampler();

bool telemetrySamplerRunning();

/** Samples written since the sampler started (all segments). */
int64_t telemetrySampleCount();

/**
 * Ask the sampler to take an immediate sample and push it to disk.
 * One relaxed atomic store: async-signal-safe by design — the
 * graceful-shutdown signal handler calls this directly.
 */
void requestTelemetryFlush();

/**
 * Label the pipeline phase recorded with each sample ("train",
 * "eval", "dse", ...). `phase` must be a string literal or other
 * static-duration string. Returns the previous phase so scoped
 * callers (WatchdogSection) can restore it.
 */
const char *setTelemetryPhase(const char *phase);

/** Current phase label ("" when none set). */
const char *telemetryPhase();

} // namespace lrd

#endif // LRD_OBS_SAMPLER_H
