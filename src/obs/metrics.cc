#include "metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/logging.h"
#include "util/worker_lane.h"

namespace lrd {

namespace obsdetail {

std::atomic<bool> gMetricsEnabled{false};

namespace {

/** One thread's private cells. Single writer; relaxed atomics make
 *  snapshot reads race-free. */
struct Shard
{
    int lane = 0;
    uint64_t seq = 0; ///< Creation order, for deterministic merging.
    std::array<std::atomic<int64_t>, kMaxCounters> counters{};
    struct HistCells
    {
        std::atomic<int64_t> count{0};
        std::atomic<int64_t> sum{0};
        std::array<std::atomic<int64_t>, kHistBuckets> buckets{};
    };
    std::array<HistCells, kMaxHistograms> hists{};

    void
    zero()
    {
        for (auto &c : counters)
            c.store(0, std::memory_order_relaxed);
        for (auto &h : hists) {
            h.count.store(0, std::memory_order_relaxed);
            h.sum.store(0, std::memory_order_relaxed);
            for (auto &b : h.buckets)
                b.store(0, std::memory_order_relaxed);
        }
    }
};

/** Registry state behind one mutex; cold paths only. */
struct State
{
    std::mutex mu;
    std::vector<std::unique_ptr<Shard>> shards; ///< All ever created.
    std::map<int, std::vector<Shard *>> freeByLane;
    uint64_t nextSeq = 0;
    std::vector<std::unique_ptr<Counter>> counters;
    std::vector<std::unique_ptr<Gauge>> gauges;
    std::vector<std::unique_ptr<Histogram>> histograms;
};

State &
state()
{
    // Leaked intentionally: thread-local shard destructors and late
    // worker writes must outlive any static destruction order.
    static State *s = new State; // lrd-lint: allow(hot-path-alloc) lazy singleton
    return *s;
}

/** Relaxed single-writer add into a cell. */
inline void
cellAdd(std::atomic<int64_t> &cell, int64_t n)
{
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
}

Shard *
acquireShard()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    const int lane = workerLane();
    auto &pool = s.freeByLane[lane];
    if (!pool.empty()) {
        Shard *sh = pool.back();
        pool.pop_back();
        return sh;
    }
    // lrd-lint: allow(hot-path-alloc) one shard per thread, first record() only
    auto sh = std::make_unique<Shard>();
    sh->lane = lane;
    sh->seq = s.nextSeq++;
    Shard *raw = sh.get();
    s.shards.push_back(std::move(sh)); // lrd-lint: allow(hot-path-alloc) first record() per thread
    return raw;
}

void
releaseShard(Shard *sh)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.freeByLane[sh->lane].push_back(sh);
}

/** Thread-local shard handle; returns the shard to the lane free
 *  list on thread exit so pool resizes reuse memory. */
struct ShardRef
{
    Shard *shard = nullptr;
    ~ShardRef()
    {
        if (shard)
            releaseShard(shard);
    }
};

Shard &
myShard()
{
    thread_local ShardRef ref;
    if (!ref.shard)
        ref.shard = acquireShard();
    return *ref.shard;
}

} // namespace

void
addToCounterSlot(int slot, int64_t n)
{
    cellAdd(myShard().counters[static_cast<size_t>(slot)], n);
}

void
recordToHistogramSlot(int slot, int64_t value)
{
    auto &h = myShard().hists[static_cast<size_t>(slot)];
    cellAdd(h.count, 1);
    cellAdd(h.sum, value);
    cellAdd(h.buckets[static_cast<size_t>(Histogram::bucketOf(value))], 1);
}

} // namespace obsdetail

using obsdetail::kHistBuckets;
using obsdetail::kMaxCounters;
using obsdetail::kMaxHistograms;
using obsdetail::state;

int
Histogram::bucketOf(int64_t value)
{
    if (value <= 0)
        return 0;
    int b = 1;
    while (b < kHistBuckets - 1 && value >= (int64_t{1} << b))
        ++b;
    return b;
}

int64_t
Histogram::bucketLowerBound(int bucket)
{
    return bucket <= 0 ? 0 : int64_t{1} << (bucket - 1);
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count <= 0)
        return 0.0;
    q = q < 0.0 ? 0.0 : q > 1.0 ? 1.0 : q;
    // Rank of the q-th sample (1-based, nearest-rank convention).
    const double rank = q * static_cast<double>(count);
    int64_t seen = 0;
    for (int b = 0; b < obsdetail::kHistBuckets; ++b) {
        const int64_t n = buckets[static_cast<size_t>(b)];
        if (n == 0)
            continue;
        const int64_t before = seen;
        seen += n;
        if (static_cast<double>(seen) < rank)
            continue;
        if (b == 0)
            return 0.0; // The <=0 bucket.
        const double lo =
            static_cast<double>(Histogram::bucketLowerBound(b));
        const double width = lo; // [2^(b-1), 2^b) spans its lower bound.
        const double frac =
            (rank - static_cast<double>(before)) / static_cast<double>(n);
        return lo + width * (frac < 0.0 ? 0.0 : frac > 1.0 ? 1.0 : frac);
    }
    return static_cast<double>(
        Histogram::bucketLowerBound(obsdetail::kHistBuckets - 1));
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry *r = new MetricsRegistry; // lrd-lint: allow(hot-path-alloc) lazy singleton
    return *r;
}

void
MetricsRegistry::setEnabled(bool on)
{
    obsdetail::gMetricsEnabled.store(on, std::memory_order_relaxed);
}

Counter *
MetricsRegistry::counter(const std::string &name, bool perLane)
{
    auto &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto &c : s.counters)
        if (c->name() == name)
            return c.get();
    require(s.counters.size() < kMaxCounters,
            "MetricsRegistry: counter slots exhausted");
    // lrd-lint: allow(hot-path-alloc) registration: once per metric name, then cached by index
    s.counters.push_back(std::unique_ptr<Counter>(new Counter(
        name, static_cast<int>(s.counters.size()), perLane)));
    return s.counters.back().get();
}

Gauge *
MetricsRegistry::gauge(const std::string &name)
{
    auto &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto &g : s.gauges)
        if (g->name() == name)
            return g.get();
    s.gauges.push_back(std::unique_ptr<Gauge>(new Gauge(name)));
    return s.gauges.back().get();
}

Histogram *
MetricsRegistry::histogram(const std::string &name)
{
    auto &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto &h : s.histograms)
        if (h->name() == name)
            return h.get();
    require(s.histograms.size() < kMaxHistograms,
            "MetricsRegistry: histogram slots exhausted");
    // lrd-lint: allow(hot-path-alloc) registration: once per metric name, then cached by index
    s.histograms.push_back(std::unique_ptr<Histogram>(
        new Histogram(name, static_cast<int>(s.histograms.size())))); // lrd-lint: allow(hot-path-alloc) registration
    return s.histograms.back().get();
}

int64_t
Counter::total() const
{
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    for (const auto &[n, v] : snap.counters)
        if (n == name_)
            return v;
    return 0;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    auto &s = state();
    std::lock_guard<std::mutex> lock(s.mu);

    // Deterministic merge order: (lane, creation seq).
    std::vector<obsdetail::Shard *> ordered;
    ordered.reserve(s.shards.size());
    for (const auto &sh : s.shards)
        ordered.push_back(sh.get());
    std::sort(ordered.begin(), ordered.end(),
              [](const auto *a, const auto *b) {
                  return a->lane != b->lane ? a->lane < b->lane
                                            : a->seq < b->seq;
              });
    int maxLane = 0;
    for (const auto *sh : ordered)
        maxLane = std::max(maxLane, sh->lane);

    MetricsSnapshot out;
    for (const auto &c : s.counters) {
        int64_t total = 0;
        std::vector<int64_t> perLane(static_cast<size_t>(maxLane) + 1, 0);
        for (const auto *sh : ordered) {
            const int64_t v =
                sh->counters[static_cast<size_t>(c->slot_)].load(
                    std::memory_order_relaxed);
            total += v;
            perLane[static_cast<size_t>(sh->lane)] += v;
        }
        out.counters.emplace_back(c->name(), total);
        if (c->perLane_)
            out.perLaneCounters.emplace_back(c->name(),
                                             std::move(perLane));
    }
    for (const auto &g : s.gauges)
        out.gauges.emplace_back(g->name(), g->value());
    for (const auto &h : s.histograms) {
        HistogramSnapshot hs;
        for (const auto *sh : ordered) {
            const auto &cells = sh->hists[static_cast<size_t>(h->slot_)];
            hs.count += cells.count.load(std::memory_order_relaxed);
            hs.sum += cells.sum.load(std::memory_order_relaxed);
            for (int b = 0; b < kHistBuckets; ++b)
                hs.buckets[static_cast<size_t>(b)] +=
                    cells.buckets[static_cast<size_t>(b)].load(
                        std::memory_order_relaxed);
        }
        out.histograms.emplace_back(h->name(), hs);
    }
    return out;
}

namespace {

void
appendJsonString(std::ostringstream &oss, const std::string &sv)
{
    oss << '"';
    for (char ch : sv) {
        switch (ch) {
          case '"': oss << "\\\""; break;
          case '\\': oss << "\\\\"; break;
          case '\n': oss << "\\n"; break;
          case '\t': oss << "\\t"; break;
          default: oss << ch;
        }
    }
    oss << '"';
}

} // namespace

std::string
MetricsRegistry::toJson() const
{
    const MetricsSnapshot snap = snapshot();
    std::ostringstream oss;
    oss << "{\n  \"context\": {\n    \"metricsEnabled\": "
        << (enabled() ? "true" : "false") << "\n  },\n";

    oss << "  \"counters\": {";
    for (size_t i = 0; i < snap.counters.size(); ++i) {
        oss << (i ? ",\n    " : "\n    ");
        appendJsonString(oss, snap.counters[i].first);
        oss << ": " << snap.counters[i].second;
    }
    oss << (snap.counters.empty() ? "},\n" : "\n  },\n");

    oss << "  \"gauges\": {";
    for (size_t i = 0; i < snap.gauges.size(); ++i) {
        oss << (i ? ",\n    " : "\n    ");
        appendJsonString(oss, snap.gauges[i].first);
        oss << ": " << snap.gauges[i].second;
    }
    oss << (snap.gauges.empty() ? "},\n" : "\n  },\n");

    oss << "  \"histograms\": {";
    for (size_t i = 0; i < snap.histograms.size(); ++i) {
        const auto &[name, hs] = snap.histograms[i];
        oss << (i ? ",\n    " : "\n    ");
        appendJsonString(oss, name);
        oss << ": {\"count\": " << hs.count << ", \"sum\": " << hs.sum
            << ", \"p50\": " << hs.p50() << ", \"p90\": " << hs.p90()
            << ", \"p99\": " << hs.p99() << ", \"buckets\": {";
        bool first = true;
        for (int b = 0; b < kHistBuckets; ++b) {
            const int64_t n = hs.buckets[static_cast<size_t>(b)];
            if (n == 0)
                continue;
            if (!first)
                oss << ", ";
            first = false;
            oss << '"' << Histogram::bucketLowerBound(b) << "\": " << n;
        }
        oss << "}}";
    }
    oss << (snap.histograms.empty() ? "},\n" : "\n  },\n");

    oss << "  \"perWorker\": {";
    for (size_t i = 0; i < snap.perLaneCounters.size(); ++i) {
        const auto &[name, lanes] = snap.perLaneCounters[i];
        oss << (i ? ",\n    " : "\n    ");
        appendJsonString(oss, name);
        oss << ": [";
        for (size_t l = 0; l < lanes.size(); ++l)
            oss << (l ? ", " : "") << lanes[l];
        oss << ']';
    }
    oss << (snap.perLaneCounters.empty() ? "}\n" : "\n  }\n");
    oss << "}\n";
    return oss.str();
}

void
MetricsRegistry::reset()
{
    auto &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto &sh : s.shards)
        sh->zero();
    for (const auto &g : s.gauges)
        g->set(0.0);
}

} // namespace lrd
