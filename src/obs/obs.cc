#include "obs.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "metrics.h"
#include "sampler.h"
#include "trace.h"
#include "util/logging.h"

namespace lrd {

namespace {

/** Export destinations, set once by initObservabilityFromEnv() on the
 *  main thread before any worker spawns (leaked: flush may run from
 *  atexit, after static destructors would have torn a global down). */
struct ObsPaths
{
    std::string trace;
    std::string stats;
    /** Telemetry config parsed from LRD_TELEMETRY; armed = start it. */
    TelemetryConfig telemetry;
    bool telemetryArmed = false;
};

/** First flushObservability() wins; later calls are no-ops. */
std::atomic<bool> gFlushed{false};

ObsPaths &
obsPaths()
{
    static ObsPaths *p = new ObsPaths;
    return *p;
}

} // namespace

const std::string &
obsTracePath()
{
    return obsPaths().trace;
}

const std::string &
obsStatsPath()
{
    return obsPaths().stats;
}

const std::string &
obsTelemetryPath()
{
    static const std::string empty;
    return obsPaths().telemetryArmed ? obsPaths().telemetry.path : empty;
}

void
initObservabilityFromEnv()
{
    if (const char *spec = std::getenv("LRD_LOG")) {
        const LogSpec parsed = parseLogSpec(spec);
        setLogLevel(parsed.level);
        setLogTimestamps(parsed.timestamps);
    }
    if (const char *path = std::getenv("LRD_TRACE")) {
        if (path[0] == '\0')
            fatal("LRD_TRACE: expected a file path");
        obsPaths().trace = path;
        Tracer::instance().setEnabled(true);
    }
    if (const char *path = std::getenv("LRD_STATS")) {
        if (path[0] == '\0')
            fatal("LRD_STATS: expected a file path (or '-' for stdout)");
        obsPaths().stats = path;
        MetricsRegistry::instance().setEnabled(true);
    }
    if (const char *spec = std::getenv("LRD_TELEMETRY")) {
        Result<TelemetryConfig> parsed = parseTelemetrySpec(spec);
        if (!parsed.ok())
            fatal(parsed.status().message());
        obsPaths().telemetry = std::move(parsed).value();
        obsPaths().telemetryArmed = true;
        // Counter deltas are the telemetry payload; recording must be
        // on before any instrumented work runs, not at sampler start.
        MetricsRegistry::instance().setEnabled(true);
    }
}

void
startTelemetryFromEnv()
{
    if (obsPaths().telemetryArmed)
        startTelemetrySampler(obsPaths().telemetry);
}

void
flushObservability()
{
    if (gFlushed.exchange(true, std::memory_order_acq_rel))
        return;
    stopTelemetrySampler();
    if (!obsPaths().trace.empty()) {
        Tracer &tracer = Tracer::instance();
        tracer.writeChromeJson(obsPaths().trace);
        tracer.writeCsv(obsPaths().trace + ".summary.csv");
        if (tracer.droppedEvents() > 0)
            warn(strCat("trace ring overflow: ", tracer.droppedEvents(),
                        " oldest events overwritten"));
        inform(strCat("wrote trace to ", obsPaths().trace, " (+ ",
                      obsPaths().trace, ".summary.csv)"));
    }
    if (!obsPaths().stats.empty()) {
        const std::string json = MetricsRegistry::instance().toJson();
        if (obsPaths().stats == "-") {
            std::fputs(json.c_str(), stdout);
        } else {
            std::FILE *f = std::fopen(obsPaths().stats.c_str(), "wb");
            if (!f) {
                warn(strCat("cannot open ", obsPaths().stats,
                            " for metrics JSON"));
                return;
            }
            std::fputs(json.c_str(), f);
            std::fclose(f);
            inform(strCat("wrote metrics to ", obsPaths().stats));
        }
    }
}

} // namespace lrd
