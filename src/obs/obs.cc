#include "obs.h"

#include <cstdio>
#include <cstdlib>

#include "metrics.h"
#include "trace.h"
#include "util/logging.h"

namespace lrd {

namespace {
std::string g_tracePath;
std::string g_statsPath;
} // namespace

const std::string &
obsTracePath()
{
    return g_tracePath;
}

const std::string &
obsStatsPath()
{
    return g_statsPath;
}

void
initObservabilityFromEnv()
{
    if (const char *spec = std::getenv("LRD_LOG")) {
        const LogSpec parsed = parseLogSpec(spec);
        setLogLevel(parsed.level);
        setLogTimestamps(parsed.timestamps);
    }
    if (const char *path = std::getenv("LRD_TRACE")) {
        if (path[0] == '\0')
            fatal("LRD_TRACE: expected a file path");
        g_tracePath = path;
        Tracer::instance().setEnabled(true);
    }
    if (const char *path = std::getenv("LRD_STATS")) {
        if (path[0] == '\0')
            fatal("LRD_STATS: expected a file path (or '-' for stdout)");
        g_statsPath = path;
        MetricsRegistry::instance().setEnabled(true);
    }
}

void
flushObservability()
{
    if (!g_tracePath.empty()) {
        Tracer &tracer = Tracer::instance();
        tracer.writeChromeJson(g_tracePath);
        tracer.writeCsv(g_tracePath + ".summary.csv");
        if (tracer.droppedEvents() > 0)
            warn(strCat("trace ring overflow: ", tracer.droppedEvents(),
                        " oldest events overwritten"));
        inform(strCat("wrote trace to ", g_tracePath, " (+ ",
                      g_tracePath, ".summary.csv)"));
    }
    if (!g_statsPath.empty()) {
        const std::string json = MetricsRegistry::instance().toJson();
        if (g_statsPath == "-") {
            std::fputs(json.c_str(), stdout);
        } else {
            std::FILE *f = std::fopen(g_statsPath.c_str(), "wb");
            if (!f) {
                warn(strCat("cannot open ", g_statsPath,
                            " for metrics JSON"));
                return;
            }
            std::fputs(json.c_str(), f);
            std::fclose(f);
            inform(strCat("wrote metrics to ", g_statsPath));
        }
    }
}

} // namespace lrd
