/**
 * @file
 * Scoped tracing with chrome://tracing / Perfetto JSON export.
 *
 * Usage:
 *
 *     LRD_TRACE_SPAN("gemm");                  // span to end of scope
 *     LRD_TRACE_SPAN("jacobi.sweep", offNorm); // with a numeric arg
 *
 * Each span records one complete ("ph":"X") event into the calling
 * thread's ring buffer; buffers are keyed by workerLane(), so the
 * exported trace shows one lane per pool worker plus lane 0 for the
 * main thread. When tracing is disabled (the default) a span is one
 * relaxed atomic load and a branch; span names must be string
 * literals (the ring stores the pointer, not a copy).
 *
 * Export: toChromeJson() loads directly in chrome://tracing or
 * https://ui.perfetto.dev; toCsv() is a flat per-name summary
 * (count / total / min / max / mean microseconds).
 */

#ifndef LRD_OBS_TRACE_H
#define LRD_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace lrd {

namespace obsdetail {
extern std::atomic<bool> gTraceEnabled;
} // namespace obsdetail

class Tracer
{
  public:
    /** Never destructs (deliberately leaked). */
    static Tracer &instance();

    static bool
    enabled()
    {
        return obsdetail::gTraceEnabled.load(std::memory_order_relaxed);
    }

    void setEnabled(bool on);

    /** Nanoseconds since the process trace epoch (steady clock). */
    static int64_t nowNs();

    /**
     * Record one complete event on the calling thread's ring buffer.
     * @param name   Static string (lifetime of the process).
     * @param tsNs   Span begin, from nowNs().
     * @param durNs  Span duration.
     * @param arg    Optional numeric payload (exported under args.v).
     */
    void record(const char *name, int64_t tsNs, int64_t durNs,
                double arg, bool hasArg);

    /** Chrome trace-event JSON ("traceEvents" array format). */
    std::string toChromeJson() const;

    /** Per-name summary CSV: name,count,total_us,min_us,max_us,mean_us. */
    std::string toCsv() const;

    /** Write the JSON / CSV renderings; warns on I/O failure. */
    void writeChromeJson(const std::string &path) const;
    void writeCsv(const std::string &path) const;

    /** Drop all recorded events (tests, benchmarks). */
    void clear();

    /** Events lost to ring-buffer wrap-around since the last clear. */
    int64_t droppedEvents() const;

  private:
    Tracer() = default;
};

/** RAII span; prefer the LRD_TRACE_SPAN macro. */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name)
    {
        if (Tracer::enabled()) {
            name_ = name;
            t0_ = Tracer::nowNs();
        }
    }

    TraceSpan(const char *name, double arg)
    {
        if (Tracer::enabled()) {
            name_ = name;
            arg_ = arg;
            hasArg_ = true;
            t0_ = Tracer::nowNs();
        }
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    ~TraceSpan()
    {
        if (name_)
            Tracer::instance().record(name_, t0_,
                                      Tracer::nowNs() - t0_, arg_,
                                      hasArg_);
    }

  private:
    const char *name_ = nullptr; ///< Null when tracing was off at entry.
    int64_t t0_ = 0;
    double arg_ = 0.0;
    bool hasArg_ = false;
};

#define LRD_OBS_CONCAT2(a, b) a##b
#define LRD_OBS_CONCAT(a, b) LRD_OBS_CONCAT2(a, b)

#ifdef LRD_OBS_DISABLED
/** Compile-time kill switch: spans vanish entirely. */
#define LRD_TRACE_SPAN(...) static_cast<void>(0)
#else
#define LRD_TRACE_SPAN(...) \
    ::lrd::TraceSpan LRD_OBS_CONCAT(lrdTraceSpan_, __LINE__)(__VA_ARGS__)
#endif

} // namespace lrd

#endif // LRD_OBS_TRACE_H
