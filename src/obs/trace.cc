#include "trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "util/logging.h"
#include "util/worker_lane.h"

namespace lrd {

namespace obsdetail {
std::atomic<bool> gTraceEnabled{false};
} // namespace obsdetail

namespace {

/** Per-thread event ring capacity; oldest events are overwritten. */
constexpr size_t kRingCapacity = size_t{1} << 15;

struct TraceEvent
{
    const char *name;
    int64_t tsNs;
    int64_t durNs;
    double arg;
    bool hasArg;
};

/** Single-writer ring buffer; read only after parallel regions have
 *  quiesced (export happens from the posting thread at shutdown). */
struct TraceBuffer
{
    int lane = 0;
    uint64_t seq = 0;
    uint64_t written = 0; ///< Total records; ring holds the last N.
    std::vector<TraceEvent> ring;
};

struct TraceState
{
    std::mutex mu;
    std::vector<std::unique_ptr<TraceBuffer>> buffers;
    std::map<int, std::vector<TraceBuffer *>> freeByLane;
    uint64_t nextSeq = 0;
};

TraceState &
state()
{
    static TraceState *s = new TraceState; // lrd-lint: allow(hot-path-alloc) lazy singleton
    return *s;
}

TraceBuffer *
acquireBuffer()
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    const int lane = workerLane();
    auto &pool = s.freeByLane[lane];
    if (!pool.empty()) {
        TraceBuffer *b = pool.back();
        pool.pop_back();
        return b;
    }
    // lrd-lint: allow(hot-path-alloc) one ring per lane: built on first use, pooled and reused after
    auto b = std::make_unique<TraceBuffer>();
    b->lane = lane;
    b->seq = s.nextSeq++;
    b->ring.resize(kRingCapacity); // lrd-lint: allow(hot-path-alloc) first use per lane
    TraceBuffer *raw = b.get();
    s.buffers.push_back(std::move(b)); // lrd-lint: allow(hot-path-alloc) first use per lane
    return raw;
}

struct BufferRef
{
    TraceBuffer *buffer = nullptr;
    ~BufferRef()
    {
        if (!buffer)
            return;
        TraceState &s = state();
        std::lock_guard<std::mutex> lock(s.mu);
        s.freeByLane[buffer->lane].push_back(buffer);
    }
};

TraceBuffer &
myBuffer()
{
    thread_local BufferRef ref;
    if (!ref.buffer)
        ref.buffer = acquireBuffer();
    return *ref.buffer;
}

/** Buffers sorted for deterministic export order. */
std::vector<TraceBuffer *>
orderedBuffers(TraceState &s)
{
    std::vector<TraceBuffer *> ordered;
    ordered.reserve(s.buffers.size()); // lrd-lint: allow(hot-path-alloc) export path
    for (const auto &b : s.buffers)
        ordered.push_back(b.get()); // lrd-lint: allow(hot-path-alloc) export path
    std::sort(ordered.begin(), ordered.end(),
              [](const auto *a, const auto *b) {
                  return a->lane != b->lane ? a->lane < b->lane
                                            : a->seq < b->seq;
              });
    return ordered;
}

} // namespace

Tracer &
Tracer::instance()
{
    static Tracer *t = new Tracer;
    return *t;
}

void
Tracer::setEnabled(bool on)
{
    obsdetail::gTraceEnabled.store(on, std::memory_order_relaxed);
}

int64_t
Tracer::nowNs()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

void
Tracer::record(const char *name, int64_t tsNs, int64_t durNs, double arg,
               bool hasArg)
{
    TraceBuffer &b = myBuffer();
    b.ring[static_cast<size_t>(b.written % kRingCapacity)] =
        TraceEvent{name, tsNs, durNs, arg, hasArg};
    ++b.written;
}

std::string
Tracer::toChromeJson() const
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    std::ostringstream oss;
    oss << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";

    bool first = true;
    int lastMetaLane = -1;
    for (TraceBuffer *b : orderedBuffers(s)) {
        // One metadata event per lane names the Perfetto track.
        if (b->lane != lastMetaLane) {
            lastMetaLane = b->lane;
            oss << (first ? "" : ",\n");
            first = false;
            oss << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << b->lane
                << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
                << (b->lane == 0 ? std::string("main")
                                 : strCat("worker-", b->lane))
                << "\"}},\n"
                << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << b->lane
                << ", \"name\": \"thread_sort_index\", \"args\": "
                   "{\"sort_index\": "
                << b->lane << "}}";
        }
        const uint64_t n =
            std::min<uint64_t>(b->written, kRingCapacity);
        for (uint64_t i = 0; i < n; ++i) {
            const TraceEvent &e = b->ring[static_cast<size_t>(i)];
            oss << (first ? "" : ",\n");
            first = false;
            char buf[64];
            oss << "{\"ph\": \"X\", \"pid\": 1, \"tid\": " << b->lane
                << ", \"name\": \"" << e.name << "\", \"ts\": ";
            std::snprintf(buf, sizeof(buf), "%.3f",
                          static_cast<double>(e.tsNs) / 1000.0);
            oss << buf << ", \"dur\": ";
            std::snprintf(buf, sizeof(buf), "%.3f",
                          static_cast<double>(e.durNs) / 1000.0);
            oss << buf;
            if (e.hasArg) {
                std::snprintf(buf, sizeof(buf), "%.17g", e.arg);
                oss << ", \"args\": {\"v\": " << buf << "}";
            }
            oss << "}";
        }
    }
    oss << "\n]}\n";
    return oss.str();
}

std::string
Tracer::toCsv() const
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);

    struct Agg
    {
        int64_t count = 0;
        int64_t totalNs = 0;
        int64_t minNs = std::numeric_limits<int64_t>::max();
        int64_t maxNs = 0;
    };
    // std::map keys by name: deterministic row order.
    std::map<std::string, Agg> byName;
    for (TraceBuffer *b : orderedBuffers(s)) {
        const uint64_t n =
            std::min<uint64_t>(b->written, kRingCapacity);
        for (uint64_t i = 0; i < n; ++i) {
            const TraceEvent &e = b->ring[static_cast<size_t>(i)];
            Agg &a = byName[e.name];
            ++a.count;
            a.totalNs += e.durNs;
            a.minNs = std::min(a.minNs, e.durNs);
            a.maxNs = std::max(a.maxNs, e.durNs);
        }
    }

    std::ostringstream oss;
    oss << "name,count,total_us,min_us,max_us,mean_us\n";
    for (const auto &[name, a] : byName) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s,%lld,%.3f,%.3f,%.3f,%.3f\n", name.c_str(),
                      static_cast<long long>(a.count),
                      static_cast<double>(a.totalNs) / 1000.0,
                      static_cast<double>(a.minNs) / 1000.0,
                      static_cast<double>(a.maxNs) / 1000.0,
                      static_cast<double>(a.totalNs) / 1000.0
                          / static_cast<double>(a.count));
        oss << buf;
    }
    return oss.str();
}

namespace {

void
writeFileOrWarn(const std::string &path, const std::string &content,
                const char *what)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        warn(strCat("Tracer: cannot open ", path, " for ", what));
        return;
    }
    out << content;
    if (!out.good())
        warn(strCat("Tracer: short write to ", path));
}

} // namespace

void
Tracer::writeChromeJson(const std::string &path) const
{
    writeFileOrWarn(path, toChromeJson(), "chrome trace JSON");
}

void
Tracer::writeCsv(const std::string &path) const
{
    writeFileOrWarn(path, toCsv(), "trace CSV summary");
}

void
Tracer::clear()
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto &b : s.buffers)
        b->written = 0;
}

int64_t
Tracer::droppedEvents() const
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    int64_t dropped = 0;
    for (const auto &b : s.buffers)
        if (b->written > kRingCapacity)
            dropped += static_cast<int64_t>(b->written - kRingCapacity);
    return dropped;
}

} // namespace lrd
