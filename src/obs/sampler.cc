#include "sampler.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread> // lrd-lint: allow(thread-outside-parallel)
#include <utility>
#include <vector>

#include "manifest.h"
#include "metrics.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/memprobe.h"
#include "util/timer.h"

namespace lrd {

namespace {

/** Signal-handler-to-sampler mailbox; relaxed store on request. */
std::atomic<bool> gFlushRequested{false};

/** Current pipeline phase label (static-duration strings only). */
std::atomic<const char *> gPhase{""};

/** All sampler state behind one mutex (cold: one lock per tick). */
struct SamplerState
{
    std::mutex mu;
    std::condition_variable cv;
    bool stopping = false;
    std::thread worker; // lrd-lint: allow(thread-outside-parallel)

    TelemetryConfig config;
    RunManifest manifest;
    std::FILE *file = nullptr;
    Timer sinceStart;
    std::atomic<int64_t> samples{0};
    int64_t segmentSamples = 0;
    int64_t rotations = 0;
    /** Counter totals at the previous sample, in registry order. */
    std::vector<std::pair<std::string, int64_t>> prevCounters;
};

SamplerState &
state()
{
    // Leaked: stopTelemetrySampler may run from atexit-era shutdown
    // paths after static destructors would have torn this down.
    static SamplerState *s = new SamplerState;
    return *s;
}

void
appendNonZeroDeltas(
    std::ostringstream &oss,
    const std::vector<std::pair<std::string, int64_t>> &now,
    const std::vector<std::pair<std::string, int64_t>> &prev)
{
    bool first = true;
    for (size_t i = 0; i < now.size(); ++i) {
        // Registry counters are append-only, so prev (if present) is
        // a strict prefix of now in identical order.
        const int64_t before = i < prev.size() ? prev[i].second : 0;
        const int64_t delta = now[i].second - before;
        if (delta == 0)
            continue;
        oss << (first ? "" : ", ") << jsonQuote(now[i].first) << ": "
            << delta;
        first = false;
    }
}

void
appendGauges(std::ostringstream &oss, const MetricsSnapshot &snap)
{
    bool first = true;
    for (const auto &[name, value] : snap.gauges) {
        if (value == 0.0)
            continue;
        oss << (first ? "" : ", ") << jsonQuote(name) << ": " << value;
        first = false;
    }
}

void
appendHistograms(std::ostringstream &oss, const MetricsSnapshot &snap)
{
    bool first = true;
    for (const auto &[name, hs] : snap.histograms) {
        if (hs.count == 0)
            continue;
        oss << (first ? "" : ", ") << jsonQuote(name)
            << ": {\"count\": " << hs.count << ", \"p50\": " << hs.p50()
            << ", \"p90\": " << hs.p90() << ", \"p99\": " << hs.p99()
            << "}";
        first = false;
    }
}

void
appendMemory(std::ostringstream &oss)
{
    const ProcMemSample mem = sampleProcMem();
    const TensorArenaStats arena = tensorArenaStats();
    oss << "\"rss_bytes\": " << mem.rssBytes
        << ", \"rss_peak_bytes\": " << mem.peakRssBytes
        << ", \"arena_live_bytes\": " << arena.liveBytes
        << ", \"arena_peak_bytes\": " << arena.peakLiveBytes
        << ", \"arena_allocs\": " << arena.allocCount
        << ", \"arena_alloc_bytes\": " << arena.allocBytes;
}

/** Write one line + flush; callers hold the state mutex. */
void
writeLine(SamplerState &s, const std::string &line)
{
    if (!s.file)
        return;
    std::fputs(line.c_str(), s.file);
    std::fputc('\n', s.file);
    std::fflush(s.file);
}

/** Rotate <path> -> <path>.1 and start a fresh manifest-stamped
 *  segment; callers hold the state mutex. */
void
rotateSegment(SamplerState &s)
{
    std::fclose(s.file);
    s.file = nullptr;
    const std::string old = s.config.path + ".1";
    if (std::rename(s.config.path.c_str(), old.c_str()) != 0) {
        warn(strCat("telemetry: cannot rotate ", s.config.path,
                    "; sampling stops"));
        return;
    }
    s.file = std::fopen(s.config.path.c_str(), "wb");
    if (!s.file) {
        warn(strCat("telemetry: cannot reopen ", s.config.path,
                    " after rotation; sampling stops"));
        return;
    }
    ++s.rotations;
    s.segmentSamples = 0;
    writeLine(s, s.manifest.toJson());
}

/** Take one sample; callers hold the state mutex. */
void
takeSample(SamplerState &s)
{
    if (!s.file)
        return;
    if (s.segmentSamples >= s.config.maxSamplesPerSegment) {
        rotateSegment(s);
        if (!s.file)
            return;
    }
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    std::ostringstream oss;
    oss << "{\"type\": \"sample\", \"t_ms\": "
        << static_cast<int64_t>(s.sinceStart.elapsedMillis())
        << ", \"phase\": "
        << jsonQuote(gPhase.load(std::memory_order_relaxed)) << ", ";
    appendMemory(oss);
    oss << ", \"counters\": {";
    appendNonZeroDeltas(oss, snap.counters, s.prevCounters);
    oss << "}, \"gauges\": {";
    appendGauges(oss, snap);
    oss << "}, \"hist\": {";
    appendHistograms(oss, snap);
    oss << "}}";
    writeLine(s, oss.str());
    s.prevCounters = snap.counters;
    s.segmentSamples++;
    s.samples.fetch_add(1, std::memory_order_relaxed);
}

/** Final cumulative record; callers hold the state mutex. */
void
writeFinalRecord(SamplerState &s)
{
    if (!s.file)
        return;
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    std::ostringstream oss;
    oss << "{\"type\": \"final\", \"t_ms\": "
        << static_cast<int64_t>(s.sinceStart.elapsedMillis())
        << ", \"runId\": " << jsonQuote(s.manifest.runId)
        << ", \"samples\": " << s.samples.load(std::memory_order_relaxed)
        << ", \"rotations\": " << s.rotations << ", ";
    appendMemory(oss);
    oss << ", \"counters\": {";
    // Totals, not deltas: diff an empty "previous" snapshot.
    appendNonZeroDeltas(oss, snap.counters, {});
    oss << "}, \"gauges\": {";
    appendGauges(oss, snap);
    oss << "}, \"hist\": {";
    appendHistograms(oss, snap);
    oss << "}}";
    writeLine(s, oss.str());
}

void
samplerMain()
{
    SamplerState &s = state();
    std::unique_lock<std::mutex> lock(s.mu);
    const auto interval =
        std::chrono::milliseconds(s.config.intervalMs);
    // Wait in short slices so a flush request (one relaxed store from
    // the signal handler, which cannot notify a cv) lands within
    // ~50ms even under long sampling intervals.
    const auto slice =
        interval < std::chrono::milliseconds(50)
            ? interval
            : std::chrono::milliseconds(50);
    Timer sinceSample;
    while (!s.stopping) {
        s.cv.wait_for(lock, slice);
        if (s.stopping)
            break;
        const bool flushNow =
            gFlushRequested.exchange(false, std::memory_order_relaxed);
        if (!flushNow
            && sinceSample.elapsedMillis()
                   < static_cast<double>(s.config.intervalMs))
            continue;
        takeSample(s);
        sinceSample.reset();
    }
}

} // namespace

Result<TelemetryConfig>
parseTelemetrySpec(const std::string &spec)
{
    TelemetryConfig config;
    const size_t colon = spec.find(':');
    const std::string ms = spec.substr(0, colon);
    if (ms.empty()
        || ms.find_first_not_of("0123456789") != std::string::npos)
        return Status(StatusCode::InvalidArgument, "telemetry.parse",
                      strCat("LRD_TELEMETRY: bad interval '", ms,
                             "' (expected <ms>[:path])"));
    config.intervalMs = std::atoi(ms.c_str());
    if (config.intervalMs < 1)
        return Status(StatusCode::InvalidArgument, "telemetry.parse",
                      "LRD_TELEMETRY: interval must be >= 1 ms");
    if (colon != std::string::npos) {
        config.path = spec.substr(colon + 1);
        if (config.path.empty())
            return Status(StatusCode::InvalidArgument, "telemetry.parse",
                          "LRD_TELEMETRY: empty path after ':'");
    }
    return config;
}

void
startTelemetrySampler(const TelemetryConfig &config)
{
    SamplerState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.worker.joinable()) {
        warn("telemetry: sampler already running");
        return;
    }
    s.file = std::fopen(config.path.c_str(), "wb");
    if (!s.file) {
        warn(strCat("telemetry: cannot open ", config.path,
                    "; sampling disabled"));
        return;
    }
    s.config = config;
    s.manifest = captureRunManifest();
    s.stopping = false;
    s.samples.store(0, std::memory_order_relaxed);
    s.segmentSamples = 0;
    s.rotations = 0;
    s.prevCounters.clear();
    s.sinceStart.reset();
    gFlushRequested.store(false, std::memory_order_relaxed);
    MetricsRegistry::instance().setEnabled(true);
    writeLine(s, s.manifest.toJson());
    // The sampler is a read-only observer, never a compute worker, so
    // it lives outside the pool's deterministic lane structure.
    // lrd-lint: allow(thread-outside-parallel)
    s.worker = std::thread(samplerMain);
    inform(strCat("telemetry: sampling every ", config.intervalMs,
                  " ms to ", config.path, " (run ", s.manifest.runId,
                  ")"));
}

void
stopTelemetrySampler()
{
    SamplerState &s = state();
    std::thread worker; // lrd-lint: allow(thread-outside-parallel)
    {
        std::lock_guard<std::mutex> lock(s.mu);
        if (!s.worker.joinable()) {
            // Never started (or already stopped): nothing to join,
            // but an open file from a failed start cannot exist —
            // start only spawns after a successful open.
            return;
        }
        s.stopping = true;
        worker = std::move(s.worker);
    }
    s.cv.notify_all();
    worker.join();
    std::lock_guard<std::mutex> lock(s.mu);
    takeSample(s); // One last delta so short phases are not lost.
    writeFinalRecord(s);
    if (s.file) {
        std::fclose(s.file);
        s.file = nullptr;
        inform(strCat("telemetry: wrote ",
                      s.samples.load(std::memory_order_relaxed),
                      " samples to ", s.config.path));
    }
}

bool
telemetrySamplerRunning()
{
    SamplerState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.worker.joinable();
}

int64_t
telemetrySampleCount()
{
    return state().samples.load(std::memory_order_relaxed);
}

void
requestTelemetryFlush()
{
    gFlushRequested.store(true, std::memory_order_relaxed);
}

const char *
setTelemetryPhase(const char *phase)
{
    return gPhase.exchange(phase ? phase : "",
                           std::memory_order_relaxed);
}

const char *
telemetryPhase()
{
    return gPhase.load(std::memory_order_relaxed);
}

} // namespace lrd
