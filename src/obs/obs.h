/**
 * @file
 * Process-level observability wiring: environment-variable
 * configuration and end-of-run artifact flushing.
 *
 * Recognized environment variables (read by initObservabilityFromEnv,
 * which lrdtool calls at startup):
 *
 *   LRD_LOG=<level>[+ts]  log level (debug|info|warn|error); "+ts"
 *                         adds timestamp + worker-index prefixes.
 *   LRD_TRACE=<file>      enable tracing; flushObservability() writes
 *                         chrome-trace JSON to <file> and a flat
 *                         summary to <file>.summary.csv.
 *   LRD_STATS=<file>      enable metrics; flushObservability() writes
 *                         the registry JSON to <file> ("-" = stdout).
 */

#ifndef LRD_OBS_OBS_H
#define LRD_OBS_OBS_H

#include <string>

namespace lrd {

/**
 * Apply LRD_LOG / LRD_TRACE / LRD_STATS from the environment.
 * @throws std::runtime_error (via fatal()) on a malformed LRD_LOG.
 */
void initObservabilityFromEnv();

/** Write any trace/stats artifacts requested via the environment. */
void flushObservability();

/** Paths captured by initObservabilityFromEnv ("" = not requested). */
const std::string &obsTracePath();
const std::string &obsStatsPath();

} // namespace lrd

#endif // LRD_OBS_OBS_H
