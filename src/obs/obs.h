/**
 * @file
 * Process-level observability wiring: environment-variable
 * configuration and end-of-run artifact flushing.
 *
 * Recognized environment variables (read by initObservabilityFromEnv,
 * which lrdtool calls at startup):
 *
 *   LRD_LOG=<level>[+ts]  log level (debug|info|warn|error); "+ts"
 *                         adds timestamp + worker-index prefixes.
 *   LRD_TRACE=<file>      enable tracing; flushObservability() writes
 *                         chrome-trace JSON to <file> and a flat
 *                         summary to <file>.summary.csv.
 *   LRD_STATS=<file>      enable metrics; flushObservability() writes
 *                         the registry JSON to <file> ("-" = stdout).
 *   LRD_TELEMETRY=<ms>[:path]
 *                         flight-recorder time series: sample counter
 *                         deltas / gauges / histogram quantiles / RSS
 *                         / arena bytes every <ms> into a JSONL file
 *                         (default lrd_telemetry.jsonl). The sampler
 *                         itself starts at startTelemetryFromEnv() so
 *                         the entry point can push runtime facts into
 *                         the manifest first (obs/manifest.h).
 */

#ifndef LRD_OBS_OBS_H
#define LRD_OBS_OBS_H

#include <string>

namespace lrd {

/**
 * Apply LRD_LOG / LRD_TRACE / LRD_STATS from the environment.
 * @throws std::runtime_error (via fatal()) on a malformed LRD_LOG.
 */
void initObservabilityFromEnv();

/**
 * Start the telemetry sampler if LRD_TELEMETRY was parsed by
 * initObservabilityFromEnv (no-op otherwise). Separate from env
 * parsing so callers can setManifestRuntimeInfo() in between.
 */
void startTelemetryFromEnv();

/**
 * Write any trace/stats artifacts requested via the environment and
 * stop the telemetry sampler (writing its final record). Idempotent:
 * the second and later calls are no-ops, so the normal exit path and
 * the graceful-shutdown path may both call it.
 */
void flushObservability();

/** Paths captured by initObservabilityFromEnv ("" = not requested). */
const std::string &obsTracePath();
const std::string &obsStatsPath();
const std::string &obsTelemetryPath();

} // namespace lrd

#endif // LRD_OBS_OBS_H
